// Kernel dispatch: every distance computation in the engine flows
// through one of the registered Kernel implementations. The paper's
// RC#5 shows the distance kernel dominating every PostgreSQL search
// path; this file gives the codebase exactly one seam to optimize it.
//
// Three implementations register here:
//
//   - "ref": the PASE-style scalar baseline (fvec_L2sqr_ref). Its solo
//     form is one sequential accumulator chain, and its batched forms
//     (blas.L2SqrNT/L2SqrNTRows) are proven bit-equal to that chain per
//     pair. It is the parity oracle for tests and the fixed kernel for
//     paths that must be session-independent (bucket assignment).
//   - "unrolled": cache-blocked 8-way unrolled generic Go, the default.
//     Eight independent accumulator chains hide FP add latency.
//   - "avx2": Go assembly under an amd64 build tag with a runtime CPUID
//     feature check (see kernel_avx2_amd64.go); on other platforms or
//     older CPUs the name resolves to the default kernel.
//
// The parity contract is per kernel, not across kernels: for any
// kernel K, K's batched forms (L2SqrBatch, L2SqrNT, L2SqrNTRows) are
// bit-for-bit equal, pair by pair, to K.L2Sqr — and K.L2Sqr(x, y) ==
// K.L2Sqr(y, x) bitwise (IEEE subtraction is sign-symmetric and
// x·x == (−x)·(−x)), which the multi-query probe path relies on when it
// transposes tuples and queries. Different kernels sum in different
// orders and so round differently; only "ref" is bit-equal to the
// sequential reference sum. The batch coalescer's byte-identical
// promise therefore holds under every kernel, because a batch group
// never mixes kernels (distance_kernel is part of the group key).
package vec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vecstudy/internal/blas"
)

// Kernel is the distance-computation interface. All methods compute
// squared Euclidean (L2) distance; x, y, q and every row must share one
// dimensionality.
type Kernel interface {
	// Name reports the kernel's registered name.
	Name() string
	// L2Sqr returns ‖x−y‖².
	L2Sqr(x, y []float32) float32
	// L2SqrBatch writes ‖q−rows[i]‖² into out[i] for every row. rows may
	// alias pinned page memory; no row is retained or copied.
	L2SqrBatch(q []float32, rows [][]float32, out []float32)
	// L2SqrNT writes the full m×n matrix C[i*n+j] = ‖a_i − b_j‖² for
	// row-major A (m×k) and B (n×k).
	L2SqrNT(a []float32, m, k int, b []float32, n int, c []float32)
	// L2SqrNTRows is L2SqrNT with A supplied as a slice of row views
	// (zero-copy scoring of tuples that alias pinned pages).
	L2SqrNTRows(rows [][]float32, k int, b []float32, n int, c []float32)
	// L2SqrSQ8 returns the asymmetric ‖q − decode(code)‖² distance
	// between a full-precision query and an SQ8 byte-coded vector,
	// decoding on the fly against the quantizer's per-dimension grid.
	L2SqrSQ8(q []float32, code []byte, sq *SQ8) float32
	// L2SqrSQ8Batch writes L2SqrSQ8(q, codes[i], sq) into out[i] for
	// every code, bit-identically to the solo form (the same contract
	// L2SqrBatch has with L2Sqr). It is the direct page-batch form of the
	// asymmetric distance; plain index scans score pages through the
	// cheaper decomposed DotSQ8Batch + stored code norms instead, and the
	// parity suite anchors that decomposition against this form. codes
	// may alias pinned page memory; no code is retained or copied.
	L2SqrSQ8Batch(q []float32, codes [][]byte, sq *SQ8, out []float32)
	// DotSQ8Batch writes Σ_j w[j]·float32(codes[i][j]) into out[i] for
	// every code — the inner-product half of the decomposed asymmetric
	// distance (see SQ8.DecomposeQuery); the caller reassembles
	// ‖u‖² − 2·out[i] + norm_i from its precomputed norms. out[i] is a
	// pure function of (w, codes[i]): batch composition never affects a
	// lane, so any two walks that hand the same page of codes to the
	// same kernel score identically. Reduction order is per-kernel, as
	// with L2Sqr. codes may alias pinned page memory.
	DotSQ8Batch(w []float32, codes [][]byte, out []float32)
}

// DefaultKernelName is the kernel a session starts with.
const DefaultKernelName = "unrolled"

var (
	kernelMu sync.RWMutex
	kernels  = make(map[string]Kernel)
)

// knownKernelNames are the names SET distance_kernel accepts on every
// host, whether or not the host registers them: a session script
// recorded on an AVX2 machine must replay on one without it.
var knownKernelNames = []string{"avx2", "ref", "unrolled"}

// RegisterKernel installs a kernel implementation. It panics on
// duplicate registration (a programming error).
func RegisterKernel(k Kernel) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[k.Name()]; dup {
		panic(fmt.Sprintf("vec: duplicate kernel %q", k.Name()))
	}
	kernels[k.Name()] = k
}

func init() {
	RegisterKernel(refKernel{})
	RegisterKernel(unrolledKernel{})
}

// KnownKernelNames returns every name ForName resolves without error,
// sorted — including names that fall back on this host.
func KnownKernelNames() []string {
	out := make([]string, len(knownKernelNames))
	copy(out, knownKernelNames)
	return out
}

// RegisteredKernelNames returns the kernels actually available on this
// host, sorted.
func RegisteredKernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	out := make([]string, 0, len(kernels))
	for n := range kernels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ForName resolves a kernel by name. The empty string resolves to the
// default. A known-but-unregistered name (avx2 on a host without the
// ISA) falls back to the default kernel instead of erroring, so knob
// replay works across heterogeneous cluster nodes; the returned
// kernel's Name() reports what actually runs (EXPLAIN shows it).
func ForName(name string) (Kernel, error) {
	if name == "" {
		name = DefaultKernelName
	}
	kernelMu.RLock()
	k, ok := kernels[name]
	if !ok {
		k = kernels[DefaultKernelName]
	}
	kernelMu.RUnlock()
	if ok {
		return k, nil
	}
	for _, known := range knownKernelNames {
		if name == known {
			return k, nil
		}
	}
	return nil, fmt.Errorf("vec: unknown distance kernel %q (have %v)", name, KnownKernelNames())
}

// Ref returns the reference kernel — the fixed, session-independent
// arithmetic used wherever a result must not depend on SET
// distance_kernel: bucket assignment (Insert and Delete must re-derive
// the same bucket), index build/training, and test oracles.
func Ref() Kernel {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	return kernels["ref"]
}

// Default returns the default kernel.
func Default() Kernel {
	k, _ := ForName("")
	return k
}

// NTParallel partitions the rows of A across nthreads goroutines, each
// running kern.L2SqrNT on its slice. Row partitioning keeps every
// (i, j) pair inside one serial kernel call, so the result is
// bit-identical to the serial kern.L2SqrNT for any kernel. nthreads ≤ 0
// means all CPUs.
func NTParallel(kern Kernel, a []float32, m, k int, b []float32, n int, c []float32, nthreads int) {
	if m < 8 || nthreads == 1 {
		kern.L2SqrNT(a, m, k, b, n, c)
		return
	}
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	if nthreads > m/4 {
		nthreads = m / 4
	}
	if nthreads <= 1 {
		kern.L2SqrNT(a, m, k, b, n, c)
		return
	}
	rowsPer := (m + nthreads - 1) / nthreads
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		lo := t * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kern.L2SqrNT(a[lo*k:hi*k], hi-lo, k, b, n, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}

// refKernel is the PASE-style scalar baseline: one sequential
// accumulator chain per pair, everywhere. Its batched forms delegate to
// the blas L2 routines, whose per-pair chains are proven bit-equal to
// L2SqrRef (see internal/blas/l2batch.go).
type refKernel struct{}

// Name implements Kernel.
func (refKernel) Name() string { return "ref" }

// L2Sqr implements Kernel.
func (refKernel) L2Sqr(x, y []float32) float32 { return L2SqrRef(x, y) }

// L2SqrBatch implements Kernel.
func (refKernel) L2SqrBatch(q []float32, rows [][]float32, out []float32) {
	for i, r := range rows {
		out[i] = L2SqrRef(q, r)
	}
}

// L2SqrNT implements Kernel.
func (refKernel) L2SqrNT(a []float32, m, k int, b []float32, n int, c []float32) {
	blas.L2SqrNT(a, m, k, b, n, c)
}

// L2SqrNTRows implements Kernel.
func (refKernel) L2SqrNTRows(rows [][]float32, k int, b []float32, n int, c []float32) {
	blas.L2SqrNTRows(rows, k, b, n, c)
}

// L2SqrSQ8 implements Kernel: the sequential reference form of the
// asymmetric distance, d_i = q_i − (min_i + step_i·code_i).
func (refKernel) L2SqrSQ8(q []float32, code []byte, sq *SQ8) float32 {
	mn, st := sq.Min, sq.Step
	var s float32
	for i := range q {
		d := q[i] - (mn[i] + st[i]*float32(code[i]))
		s += d * d
	}
	return s
}

// L2SqrSQ8Batch implements Kernel.
func (k refKernel) L2SqrSQ8Batch(q []float32, codes [][]byte, sq *SQ8, out []float32) {
	for i, c := range codes {
		out[i] = k.L2SqrSQ8(q, c, sq)
	}
}

// DotSQ8Batch implements Kernel: one sequential chain per code.
func (refKernel) DotSQ8Batch(w []float32, codes [][]byte, out []float32) {
	for i, code := range codes {
		code = code[:len(w)]
		var s float32
		for j, c := range code {
			s += w[j] * float32(c)
		}
		out[i] = s
	}
}

// unrolledKernel is the default generic-Go kernel: 8-way unrolled with
// eight independent accumulator chains, reduced pairwise at the end.
// Its batched forms call the solo form per pair inside an 8-row cache
// block (each B row stays hot across the block), which makes solo/batch
// bit-parity true by construction.
type unrolledKernel struct{}

// Name implements Kernel.
func (unrolledKernel) Name() string { return "unrolled" }

// L2Sqr implements Kernel. The fixed-length subslices inside the loop
// let the compiler prove every index in bounds, so the body is pure
// subtract/multiply/add with eight independent chains.
func (unrolledKernel) L2Sqr(x, y []float32) float32 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		xx := x[i : i+8 : i+8]
		yy := y[i : i+8 : i+8]
		d0 := xx[0] - yy[0]
		d1 := xx[1] - yy[1]
		d2 := xx[2] - yy[2]
		d3 := xx[3] - yy[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d4 := xx[4] - yy[4]
		d5 := xx[5] - yy[5]
		d6 := xx[6] - yy[6]
		d7 := xx[7] - yy[7]
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	for ; i < n; i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// L2SqrBatch implements Kernel.
func (k unrolledKernel) L2SqrBatch(q []float32, rows [][]float32, out []float32) {
	for i, r := range rows {
		out[i] = k.L2Sqr(q, r)
	}
}

// L2SqrNT implements Kernel.
func (k unrolledKernel) L2SqrNT(a []float32, m, kk int, b []float32, n int, c []float32) {
	for i0 := 0; i0 < m; i0 += 8 {
		i1 := min(i0+8, m)
		for j := 0; j < n; j++ {
			brow := b[j*kk : (j+1)*kk]
			for i := i0; i < i1; i++ {
				c[i*n+j] = k.L2Sqr(a[i*kk:(i+1)*kk], brow)
			}
		}
	}
}

// L2SqrNTRows implements Kernel.
func (k unrolledKernel) L2SqrNTRows(rows [][]float32, kk int, b []float32, n int, c []float32) {
	m := len(rows)
	for i0 := 0; i0 < m; i0 += 8 {
		i1 := min(i0+8, m)
		for j := 0; j < n; j++ {
			brow := b[j*kk : (j+1)*kk]
			for i := i0; i < i1; i++ {
				c[i*n+j] = k.L2Sqr(rows[i][:kk], brow)
			}
		}
	}
}

// L2SqrSQ8 implements Kernel: the 4-chain unrolled asymmetric distance.
// The hoisted reslices and fixed-length subslices let the compiler prove
// every index of all four arrays in bounds, which matters more here than
// in L2Sqr — the body reads four streams per element, so un-eliminated
// checks dominate the decode arithmetic.
func (unrolledKernel) L2SqrSQ8(q []float32, code []byte, sq *SQ8) float32 {
	n := len(q)
	code = code[:n]
	mn := sq.Min[:n]
	st := sq.Step[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		qq := q[i : i+4 : i+4]
		cc := code[i : i+4 : i+4]
		mm := mn[i : i+4 : i+4]
		ss := st[i : i+4 : i+4]
		d0 := qq[0] - (mm[0] + ss[0]*float32(cc[0]))
		d1 := qq[1] - (mm[1] + ss[1]*float32(cc[1]))
		d2 := qq[2] - (mm[2] + ss[2]*float32(cc[2]))
		d3 := qq[3] - (mm[3] + ss[3]*float32(cc[3]))
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := q[i] - (mn[i] + st[i]*float32(code[i]))
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// L2SqrSQ8Batch implements Kernel.
func (k unrolledKernel) L2SqrSQ8Batch(q []float32, codes [][]byte, sq *SQ8, out []float32) {
	for i, c := range codes {
		out[i] = k.L2SqrSQ8(q, c, sq)
	}
}

// DotSQ8Batch implements Kernel: the 4-chain unrolled dot product, with
// the same subslice discipline as L2SqrSQ8 — two streams per element
// here, so eliminated bounds checks are most of the win.
func (unrolledKernel) DotSQ8Batch(w []float32, codes [][]byte, out []float32) {
	n := len(w)
	for ci, code := range codes {
		code = code[:n]
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= n; i += 4 {
			ww := w[i : i+4 : i+4]
			cc := code[i : i+4 : i+4]
			s0 += ww[0] * float32(cc[0])
			s1 += ww[1] * float32(cc[1])
			s2 += ww[2] * float32(cc[2])
			s3 += ww[3] * float32(cc[3])
		}
		for ; i < n; i++ {
			s0 += w[i] * float32(code[i])
		}
		out[ci] = (s0 + s1) + (s2 + s3)
	}
}
