package vec

// SQ8 is a trained per-dimension scalar quantizer: each float32
// coordinate is mapped onto a 256-step uniform grid between the
// dimension's observed minimum and maximum, so a d-dimensional vector
// stores in d bytes instead of 4d — 4× smaller index pages, 4× fewer
// buffer-pool pins per bucket scan (the paper's RC#2 attacked from the
// data side).
//
// Distances against codes are asymmetric: the query stays full
// precision and each code byte is decoded on the fly,
// r_i = Min_i + Step_i·code_i, inside the kernel (Kernel.L2SqrSQ8).
// Because the decode expression is identical everywhere, for any
// kernel K the approximate distance K.L2SqrSQ8(q, Encode(x), sq) is
// bit-equal to K.L2Sqr(q, Decode(Encode(x))) computed with the same
// loop structure — the quantization error is entirely in the grid
// snap, bounded by Step_i/2 per dimension (see Encode).
type SQ8 struct {
	// Min is the per-dimension grid origin.
	Min []float32
	// Step is the per-dimension grid pitch, (max−min)/255. A dimension
	// that was constant in the training set has Step 0 and always
	// decodes to Min.
	Step []float32
}

// Dim returns the quantizer's dimensionality.
func (s *SQ8) Dim() int { return len(s.Min) }

// SQ8FromMinMax builds a quantizer from per-dimension bounds.
// len(mins) must equal len(maxs); maxs[i] < mins[i] is treated as a
// constant dimension.
func SQ8FromMinMax(mins, maxs []float32) *SQ8 {
	d := len(mins)
	s := &SQ8{Min: make([]float32, d), Step: make([]float32, d)}
	copy(s.Min, mins)
	for i := 0; i < d; i++ {
		if maxs[i] > mins[i] {
			s.Step[i] = (maxs[i] - mins[i]) / 255
		}
	}
	return s
}

// Encode quantizes x onto the grid, writing one byte per dimension into
// code (len(code) ≥ Dim()). Coordinates are rounded to the nearest grid
// point, so for x inside the trained range the snap error per dimension
// is at most Step_i/2; out-of-range coordinates clamp to the grid edge
// (inserts after train may exceed the observed bounds).
func (s *SQ8) Encode(x []float32, code []byte) {
	for i := range x {
		st := s.Step[i]
		if st == 0 {
			code[i] = 0
			continue
		}
		v := (x[i] - s.Min[i]) / st
		if v <= 0 {
			code[i] = 0
			continue
		}
		if v >= 255 {
			code[i] = 255
			continue
		}
		code[i] = uint8(v + 0.5)
	}
}

// DecomposeQuery computes the query-side terms of the decomposed
// asymmetric distance. With u_i = q_i − Min_i, the identity
//
//	‖q − decode(c)‖² = ‖u‖² − 2·Σ u_i·Step_i·c_i + Σ (Step_i·c_i)²
//
// splits the per-candidate work into one uint8 dot product against
// w_i = u_i·Step_i (Kernel.DotSQ8Batch) plus two norms that never touch
// the scan loop: the query norm ‖u‖² returned here, and the code norm
// Σ(Step_i·c_i)² computed once at encode time (CodeNorm) and stored
// beside the code. It is the paper's RC#1 norm-decomposition trick
// applied to quantized scoring. w must hold ≥ len(q) floats.
//
// The transform is sequential scalar, so for a fixed query the outputs
// are bit-identical wherever they are computed — solo and batched scans
// derive the same w and unorm and therefore the same candidate ranks.
// The reassembled distance rounds differently from the direct
// subtract-square form (cancellation between the three terms), which is
// why decomposed scoring belongs only on re-ranked paths: the k·β
// pre-selection tolerates the approximation and the re-rank restores
// exact distances.
func (s *SQ8) DecomposeQuery(q []float32, w []float32) (unorm float32) {
	mn := s.Min[:len(q)]
	st := s.Step[:len(q)]
	w = w[:len(q)]
	for i, qv := range q {
		u := qv - mn[i]
		w[i] = u * st[i]
		unorm += u * u
	}
	return unorm
}

// CodeNorm computes Σ (Step_i·c_i)², the code-side norm term of the
// decomposed asymmetric distance (see DecomposeQuery), as one
// sequential scalar float32 chain. Access methods compute it at encode
// time and persist it beside the code bytes, which makes it part of the
// on-disk layout: like bucket assignment, it must be kernel-independent,
// so there is deliberately no Kernel method for it.
func (s *SQ8) CodeNorm(code []byte) float32 {
	st := s.Step[:len(code)]
	var norm float32
	for i, c := range code {
		t := st[i] * float32(c)
		norm += t * t
	}
	return norm
}

// Decode reconstructs the grid point a code names, writing into out
// (len(out) ≥ Dim()). It returns out[:Dim()].
func (s *SQ8) Decode(code []byte, out []float32) []float32 {
	d := s.Dim()
	out = out[:d]
	for i := 0; i < d; i++ {
		out[i] = s.Min[i] + s.Step[i]*float32(code[i])
	}
	return out
}

// SQ8Trainer accumulates per-dimension min/max over the training rows.
type SQ8Trainer struct {
	mins, maxs []float32
	n          int
}

// NewSQ8Trainer returns a trainer for d-dimensional vectors.
func NewSQ8Trainer(d int) *SQ8Trainer {
	return &SQ8Trainer{mins: make([]float32, d), maxs: make([]float32, d)}
}

// Observe folds one vector into the running bounds.
func (t *SQ8Trainer) Observe(x []float32) {
	if t.n == 0 {
		copy(t.mins, x)
		copy(t.maxs, x)
		t.n++
		return
	}
	for i, v := range x {
		if v < t.mins[i] {
			t.mins[i] = v
		}
		if v > t.maxs[i] {
			t.maxs[i] = v
		}
	}
	t.n++
}

// N reports how many vectors have been observed.
func (t *SQ8Trainer) N() int { return t.n }

// Finish freezes the bounds into a quantizer.
func (t *SQ8Trainer) Finish() *SQ8 { return SQ8FromMinMax(t.mins, t.maxs) }
