// Package vec provides the low-level float32 vector kernels shared by both
// engines in this study: distance functions, norms, and batched distance
// computation.
//
// Two styles of kernel are provided on purpose, because the paper's RC#1
// and RC#5 hinge on the difference between them:
//
//   - "reference" kernels (L2SqrRef) are straightforward scalar loops,
//     mirroring PASE's fvec_L2sqr_ref;
//   - "optimized" kernels (L2Sqr, the private decomposed path behind
//     AssignBatch) use loop unrolling and the ‖x−c‖² = ‖x‖² + ‖c‖² − 2·x·c
//     decomposition with batched matrix multiplication, mirroring Faiss.
//
// Search-path code does not call these directly: every bucket scan and
// probe selection dispatches through the Kernel interface (kernel.go),
// selectable per session with SET distance_kernel.
package vec

import (
	"fmt"
	"math"
)

// Metric identifies a similarity function. The paper's experiments use
// Euclidean (L2) distance exclusively; inner product and cosine are
// provided because PASE and Faiss both expose them.
type Metric int

const (
	// L2 is squared Euclidean distance (smaller is more similar).
	L2 Metric = iota
	// InnerProduct is negative inner product (so smaller is more similar,
	// keeping min-heap logic uniform across metrics).
	InnerProduct
	// Cosine is 1 − cosine similarity.
	Cosine
)

// String returns the SQL-facing name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "l2"
	case InnerProduct:
		return "ip"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric converts a SQL-facing metric name ("l2", "ip", "cosine") or a
// PASE-style numeric code ("0", "1", "2") into a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "l2", "0", "euclidean":
		return L2, nil
	case "ip", "1", "inner_product":
		return InnerProduct, nil
	case "cosine", "2":
		return Cosine, nil
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// Distance computes the metric-appropriate dissimilarity between x and y.
// Both slices must have equal length.
func Distance(m Metric, x, y []float32) float32 {
	switch m {
	case L2:
		return L2Sqr(x, y)
	case InnerProduct:
		return -Dot(x, y)
	case Cosine:
		return CosineDistance(x, y)
	default:
		panic("vec: invalid metric")
	}
}

// L2SqrRef computes squared Euclidean distance with a plain scalar loop.
// This is the PASE-style reference kernel (fvec_L2sqr_ref in the paper);
// it is deliberately not unrolled.
func L2SqrRef(x, y []float32) float32 {
	var s float32
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// L2Sqr computes squared Euclidean distance with a 4-way unrolled loop,
// the Faiss-style scalar kernel. The compiler keeps the four partial sums
// in registers, which roughly doubles throughput over L2SqrRef on
// dimensionalities used in the paper (96–960).
func L2Sqr(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Dot computes the inner product of x and y with a 4-way unrolled loop.
func Dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm2 returns the squared L2 norm of x.
func Norm2(x []float32) float32 { return Dot(x, x) }

// Norm returns the L2 norm of x.
func Norm(x []float32) float32 { return float32(math.Sqrt(float64(Norm2(x)))) }

// CosineDistance returns 1 − cos(x, y). Zero vectors are treated as
// maximally distant (distance 1).
func CosineDistance(x, y []float32) float32 {
	dot := Dot(x, y)
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 1
	}
	return 1 - dot/float32(math.Sqrt(float64(nx)*float64(ny)))
}

// Norms2 computes the squared norms of n row vectors stored contiguously in
// data (row-major, d columns), writing them into out. out must have length
// ≥ n. It returns out[:n].
func Norms2(data []float32, n, d int, out []float32) []float32 {
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = Norm2(data[i*d : (i+1)*d])
	}
	return out
}

// Argmin returns the index of the smallest element of xs and its value.
// It panics if xs is empty.
func Argmin(xs []float32) (int, float32) {
	best, bestVal := 0, xs[0]
	for i, v := range xs[1:] {
		if v < bestVal {
			best, bestVal = i+1, v
		}
	}
	return best, bestVal
}

// Flat is a dense row-major matrix of float32 vectors, the in-memory
// storage format used by the specialized engine.
type Flat struct {
	D    int       // dimensionality of each row
	Data []float32 // len(Data) == N()*D
}

// NewFlat allocates a Flat with capacity for n d-dimensional rows.
func NewFlat(d, n int) *Flat {
	return &Flat{D: d, Data: make([]float32, 0, n*d)}
}

// N returns the number of rows currently stored.
func (f *Flat) N() int {
	if f.D == 0 {
		return 0
	}
	return len(f.Data) / f.D
}

// Row returns the i-th row. The returned slice aliases the matrix storage.
func (f *Flat) Row(i int) []float32 { return f.Data[i*f.D : (i+1)*f.D] }

// Append copies one row into the matrix. It panics if len(x) != D.
func (f *Flat) Append(x []float32) {
	if len(x) != f.D {
		panic(fmt.Sprintf("vec: appending %d-dim row to %d-dim Flat", len(x), f.D))
	}
	f.Data = append(f.Data, x...)
}

// AppendAll copies every row of data (row-major with f.D columns).
func (f *Flat) AppendAll(data []float32) {
	if len(data)%f.D != 0 {
		panic("vec: AppendAll data not a multiple of D")
	}
	f.Data = append(f.Data, data...)
}

// Clone returns a deep copy of the matrix.
func (f *Flat) Clone() *Flat {
	data := make([]float32, len(f.Data))
	copy(data, f.Data)
	return &Flat{D: f.D, Data: data}
}

// Bytes returns the in-memory footprint of the matrix payload.
func (f *Flat) Bytes() int64 { return int64(len(f.Data)) * 4 }
