package vec

import (
	"math/rand"
	"testing"
)

// randRows fills n rows of dimension d deterministically.
func randRows(rng *rand.Rand, n, d int) []float32 {
	out := make([]float32, n*d)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

// Regression: AssignBatch used to panic on ys[:d] when the centroid set
// was empty. Edge cases around tiny nx/ny must degrade cleanly.
func TestAssignBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const d = 8
	cases := []struct {
		name    string
		nx, ny  int
		threads int
	}{
		{"nx=0", 0, 5, 1},
		{"ny=0_serial", 3, 0, 1},
		{"ny=0_parallel", 3, 0, 4},
		{"ny=0_gemm", 3, 0, 2},
		{"both_zero", 0, 0, 2},
		{"ny<threads", 6, 2, 8},
		{"nx<threads", 2, 3, 8},
		{"one_centroid", 5, 1, 3},
	}
	for _, tc := range cases {
		for _, useGemm := range []bool{false, true} {
			name := tc.name + "/naive"
			if useGemm {
				name = tc.name + "/gemm"
			}
			t.Run(name, func(t *testing.T) {
				xs := randRows(rng, tc.nx, d)
				ys := randRows(rng, tc.ny, d)
				assign := make([]int32, tc.nx)
				dists := make([]float32, tc.nx)
				for i := range assign {
					assign[i] = -7 // sentinel: untouched on empty inputs
					dists[i] = -7
				}
				AssignBatch(xs, tc.nx, ys, tc.ny, d, assign, dists, useGemm, tc.threads)
				if tc.ny == 0 {
					for i := range assign {
						if assign[i] != -7 || dists[i] != -7 {
							t.Fatalf("row %d written with no centroids: assign=%d dist=%g", i, assign[i], dists[i])
						}
					}
					return
				}
				// Verify against a direct serial argmin.
				for i := 0; i < tc.nx; i++ {
					x := xs[i*d : (i+1)*d]
					best, bestD := int32(0), L2SqrRef(x, ys[:d])
					for j := 1; j < tc.ny; j++ {
						if dd := L2SqrRef(x, ys[j*d:(j+1)*d]); dd < bestD {
							best, bestD = int32(j), dd
						}
					}
					if assign[i] != best {
						t.Fatalf("row %d assigned to %d, want %d", i, assign[i], best)
					}
					if diff := dists[i] - bestD; diff < -1e-4 || diff > 1e-4 {
						t.Fatalf("row %d dist %g, want %g", i, dists[i], bestD)
					}
				}
			})
		}
	}
}
