package vec

import (
	"math"
	"math/rand"
	"testing"
)

// kernelparity: the exhaustive cross-kernel test matrix. Every
// registered kernel × every dimension in {1..67, 128, 768, 1536} ×
// adversarial inputs (denormals, ±0, duplicate coordinates that force
// distance ties). The contract it pins down, per kernel K:
//
//  1. K's batched forms (L2SqrBatch, L2SqrNT, L2SqrNTRows, NTParallel)
//     are BIT-equal, pair by pair, to K.L2Sqr — this is what the batch
//     coalescer's byte-identical promise rests on.
//  2. K.L2Sqr(x, y) == K.L2Sqr(y, x) bitwise (sign symmetry) — what the
//     multi-query probe path relies on when it transposes tuples and
//     queries.
//  3. "ref" is BIT-equal to an independent sequential float32 sum (the
//     oracle), and every other kernel agrees with ref to relative
//     tolerance. Bit-equality across kernels is impossible by
//     construction — a multi-chain kernel sums in a different order and
//     IEEE addition is not associative — which is exactly why ref is
//     pinned wherever arithmetic must be session-independent.

var parityDims = func() []int {
	var ds []int
	for d := 1; d <= 67; d++ {
		ds = append(ds, d)
	}
	return append(ds, 128, 768, 1536)
}()

// adversarialVecs builds a pair of d-dim vectors mixing normal values,
// denormals, +0/−0, and duplicated coordinates (tie fodder).
func adversarialVecs(rng *rand.Rand, d int) (x, y []float32) {
	x = make([]float32, d)
	y = make([]float32, d)
	for i := 0; i < d; i++ {
		switch i % 5 {
		case 0:
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
		case 1: // denormals: smallest positive subnormal scaled a little
			x[i] = math.Float32frombits(uint32(1 + rng.Intn(8)))
			y[i] = math.Float32frombits(uint32(1 + rng.Intn(8)))
		case 2: // signed zeros
			x[i] = float32(math.Copysign(0, float64(rng.Intn(2)*2-1)))
			y[i] = float32(math.Copysign(0, float64(rng.Intn(2)*2-1)))
		case 3: // exact duplicates: zero contribution, ties downstream
			v := float32(rng.NormFloat64())
			x[i], y[i] = v, v
		default: // large magnitude spread
			x[i] = float32(rng.NormFloat64()) * 1e6
			y[i] = float32(rng.NormFloat64()) * 1e-6
		}
	}
	return x, y
}

// seqSum is the independent oracle: a plain sequential float32
// accumulation, written without reference to any kernel code.
func seqSum(x, y []float32) float32 {
	var s float32
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func parityKernels(t *testing.T) []Kernel {
	t.Helper()
	var ks []Kernel
	for _, name := range RegisteredKernelNames() {
		k, err := ForName(name)
		if err != nil {
			t.Fatalf("ForName(%q): %v", name, err)
		}
		ks = append(ks, k)
	}
	return ks
}

func TestKernelSoloParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range parityDims {
		x, y := adversarialVecs(rng, d)
		oracle := seqSum(x, y)
		for _, k := range parityKernels(t) {
			got := k.L2Sqr(x, y)
			// Sign symmetry must be bitwise for every kernel.
			if sym := k.L2Sqr(y, x); math.Float32bits(sym) != math.Float32bits(got) {
				t.Errorf("%s d=%d: L2Sqr(x,y)=%x != L2Sqr(y,x)=%x", k.Name(), d,
					math.Float32bits(got), math.Float32bits(sym))
			}
			if k.Name() == "ref" {
				if math.Float32bits(got) != math.Float32bits(oracle) {
					t.Errorf("ref d=%d: %x, oracle %x", d, math.Float32bits(got), math.Float32bits(oracle))
				}
				continue
			}
			// Fast kernels: agreement with the oracle to relative tolerance.
			diff := math.Abs(float64(got) - float64(oracle))
			scale := math.Max(float64(oracle), 1e-30)
			if diff > 1e-4*scale {
				t.Errorf("%s d=%d: %v, oracle %v (rel %g)", k.Name(), d, got, oracle, diff/scale)
			}
		}
	}
}

func TestKernelBatchBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range parityDims {
		// A modest batch: enough rows to exercise the 8-row blocks and
		// the remainder paths.
		const m, n = 11, 5
		rows := make([][]float32, m)
		aFlat := make([]float32, m*d)
		for i := range rows {
			x, _ := adversarialVecs(rng, d)
			rows[i] = x
			copy(aFlat[i*d:(i+1)*d], x)
		}
		bFlat := make([]float32, n*d)
		queries := make([][]float32, n)
		for j := range queries {
			_, y := adversarialVecs(rng, d)
			queries[j] = y
			copy(bFlat[j*d:(j+1)*d], y)
		}
		for _, k := range parityKernels(t) {
			// L2SqrBatch vs solo.
			out := make([]float32, m)
			k.L2SqrBatch(queries[0], rows, out)
			for i := range rows {
				want := k.L2Sqr(queries[0], rows[i])
				if math.Float32bits(out[i]) != math.Float32bits(want) {
					t.Fatalf("%s d=%d: L2SqrBatch[%d]=%x, solo=%x", k.Name(), d, i,
						math.Float32bits(out[i]), math.Float32bits(want))
				}
			}
			// L2SqrNT vs solo, every pair.
			c := make([]float32, m*n)
			k.L2SqrNT(aFlat, m, d, bFlat, n, c)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want := k.L2Sqr(rows[i], queries[j])
					if math.Float32bits(c[i*n+j]) != math.Float32bits(want) {
						t.Fatalf("%s d=%d: NT[%d,%d]=%x, solo=%x", k.Name(), d, i, j,
							math.Float32bits(c[i*n+j]), math.Float32bits(want))
					}
				}
			}
			// L2SqrNTRows must match L2SqrNT exactly.
			cr := make([]float32, m*n)
			k.L2SqrNTRows(rows, d, bFlat, n, cr)
			for i := range c {
				if math.Float32bits(cr[i]) != math.Float32bits(c[i]) {
					t.Fatalf("%s d=%d: NTRows[%d]=%x, NT=%x", k.Name(), d, i,
						math.Float32bits(cr[i]), math.Float32bits(c[i]))
				}
			}
			// NTParallel must match serial NT bitwise at any thread count.
			for _, threads := range []int{2, 3} {
				cp := make([]float32, m*n)
				NTParallel(k, aFlat, m, d, bFlat, n, cp, threads)
				for i := range c {
					if math.Float32bits(cp[i]) != math.Float32bits(c[i]) {
						t.Fatalf("%s d=%d threads=%d: NTParallel[%d] diverged", k.Name(), d, threads, i)
					}
				}
			}
		}
	}
}

func TestKernelRegistryResolution(t *testing.T) {
	if def := Default(); def.Name() != DefaultKernelName {
		t.Errorf("Default() = %q, want %q", def.Name(), DefaultKernelName)
	}
	if ref := Ref(); ref.Name() != "ref" {
		t.Errorf("Ref() = %q", ref.Name())
	}
	k, err := ForName("")
	if err != nil || k.Name() != DefaultKernelName {
		t.Errorf("ForName(\"\") = %v, %v", k, err)
	}
	// Known names never error, even when unregistered on this host
	// (avx2 on non-amd64): they fall back to the default.
	for _, name := range KnownKernelNames() {
		k, err := ForName(name)
		if err != nil {
			t.Errorf("ForName(%q): %v", name, err)
		}
		if k == nil {
			t.Errorf("ForName(%q) returned nil kernel", name)
		}
	}
	if _, err := ForName("sse9"); err == nil {
		t.Error("ForName accepted unknown kernel name")
	}
}

func TestSQ8RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, d := range []int{1, 7, 32, 128, 768} {
		tr := NewSQ8Trainer(d)
		train := make([][]float32, 64)
		for i := range train {
			v := make([]float32, d)
			for j := range v {
				v[j] = float32(rng.NormFloat64()) * 10
			}
			if i == 0 {
				// Force one constant dimension to exercise Step == 0.
				v[0] = 1
			}
			train[i] = v
		}
		for i := range train {
			train[i][0] = 1 // constant dim across the whole set
			tr.Observe(train[i])
		}
		sq := tr.Finish()
		if sq.Step[0] != 0 {
			t.Fatalf("d=%d: constant dimension got step %v", d, sq.Step[0])
		}
		code := make([]byte, d)
		dec := make([]float32, d)
		for _, v := range train {
			sq.Encode(v, code)
			sq.Decode(code, dec)
			for j := range v {
				// |decode(encode(x)) − x| ≤ step/2 per dimension, with an
				// allowance for float32 rounding in the grid arithmetic
				// (the divide in Encode and the madd in Decode each
				// contribute a few ULPs).
				bound := float64(sq.Step[j])/2*(1+1e-3) + 1e-12
				if diff := math.Abs(float64(dec[j]) - float64(v[j])); diff > bound {
					t.Fatalf("d=%d dim=%d: |%v - %v| = %g > step/2 = %g",
						d, j, dec[j], v[j], diff, bound)
				}
			}
		}
	}
}

func TestKernelSQ8Asymmetric(t *testing.T) {
	// For every kernel: the asymmetric distance against a code equals
	// (to bit precision for ref, tolerance otherwise) the kernel's own
	// full-precision distance against the decoded vector — the grid snap
	// is the only error source.
	rng := rand.New(rand.NewSource(44))
	for _, d := range []int{1, 5, 16, 64, 128} {
		tr := NewSQ8Trainer(d)
		base := make([][]float32, 32)
		for i := range base {
			v := randVec(rng, d)
			base[i] = v
			tr.Observe(v)
		}
		sq := tr.Finish()
		q := randVec(rng, d)
		code := make([]byte, d)
		dec := make([]float32, d)
		for _, v := range base {
			sq.Encode(v, code)
			sq.Decode(code, dec)
			refWant := seqSum(q, dec)
			for _, k := range parityKernels(t) {
				got := k.L2SqrSQ8(q, code, sq)
				if k.Name() == "ref" {
					if math.Float32bits(got) != math.Float32bits(refWant) {
						t.Fatalf("ref d=%d: SQ8 %x, decoded oracle %x", d,
							math.Float32bits(got), math.Float32bits(refWant))
					}
					continue
				}
				if !almostEqual(float64(got), float64(refWant), 1e-4) {
					t.Fatalf("%s d=%d: SQ8 %v, decoded oracle %v", k.Name(), d, got, refWant)
				}
			}
		}
	}
}

func TestKernelDotSQ8Batch(t *testing.T) {
	// DotSQ8Batch's contract: out[i] ≈ Σ_j w[j]·float32(codes[i][j])
	// (bitwise for ref, tolerance otherwise — reduction order is
	// per-kernel), and per-lane purity — a lane's value must not depend
	// on what else is in the batch, checked by rescoring each code as a
	// singleton batch and demanding bitwise agreement.
	rng := rand.New(rand.NewSource(46))
	for _, d := range []int{1, 5, 8, 37, 64, 128} {
		w := randVec(rng, d)
		codes := make([][]byte, 33)
		for i := range codes {
			codes[i] = make([]byte, d)
			rng.Read(codes[i])
		}
		oracle := make([]float32, len(codes))
		for i, c := range codes {
			var s float32
			for j, cv := range c {
				s += w[j] * float32(cv)
			}
			oracle[i] = s
		}
		out := make([]float32, len(codes))
		solo := make([]float32, 1)
		for _, k := range parityKernels(t) {
			for i := range out {
				out[i] = -1
			}
			k.DotSQ8Batch(w, codes, out)
			for i := range codes {
				if k.Name() == "ref" {
					if math.Float32bits(out[i]) != math.Float32bits(oracle[i]) {
						t.Fatalf("ref d=%d code %d: %x, oracle %x", d, i,
							math.Float32bits(out[i]), math.Float32bits(oracle[i]))
					}
				} else if !almostEqual(float64(out[i]), float64(oracle[i]), 1e-4) {
					t.Fatalf("%s d=%d code %d: %v, oracle %v", k.Name(), d, i, out[i], oracle[i])
				}
				solo[0] = -1
				k.DotSQ8Batch(w, codes[i:i+1], solo)
				if math.Float32bits(solo[0]) != math.Float32bits(out[i]) {
					t.Fatalf("%s d=%d code %d: singleton %x != batch lane %x (lane not pure)",
						k.Name(), d, i, math.Float32bits(solo[0]), math.Float32bits(out[i]))
				}
			}
		}
	}
}

func TestDecomposedSQ8MatchesDirect(t *testing.T) {
	// The decomposed reassembly ‖u‖² − 2·dot + codeNorm must agree with
	// the direct asymmetric distance up to float32 cancellation — the
	// access-method invariant that lets plain scans score with
	// DotSQ8Batch + stored norms while predicate paths keep L2SqrSQ8.
	rng := rand.New(rand.NewSource(47))
	for _, d := range []int{8, 37, 128} {
		tr := NewSQ8Trainer(d)
		base := make([][]float32, 32)
		for i := range base {
			v := randVec(rng, d)
			base[i] = v
			tr.Observe(v)
		}
		sq := tr.Finish()
		q := randVec(rng, d)
		w := make([]float32, d)
		unorm := sq.DecomposeQuery(q, w)
		codes := make([][]byte, len(base))
		norms := make([]float32, len(base))
		for i, v := range base {
			codes[i] = make([]byte, d)
			sq.Encode(v, codes[i])
			norms[i] = sq.CodeNorm(codes[i])
		}
		dots := make([]float32, len(codes))
		for _, k := range parityKernels(t) {
			k.DotSQ8Batch(w, codes, dots)
			for i := range codes {
				got := unorm - 2*dots[i] + norms[i]
				want := k.L2SqrSQ8(q, codes[i], sq)
				// Cancellation between the three terms bounds the error by
				// the terms' magnitude, not the result's.
				tol := 1e-4 * float64(unorm+norms[i]+1)
				if diff := math.Abs(float64(got) - float64(want)); diff > tol {
					t.Fatalf("%s d=%d code %d: decomposed %v, direct %v (|Δ|=%g > %g)",
						k.Name(), d, i, got, want, diff, tol)
				}
			}
		}
	}
}

func TestKernelSQ8BatchMatchesSolo(t *testing.T) {
	// The batch form's contract is bitwise agreement with the solo form,
	// per code — exercised across 8-aligned dimensions (the avx2 batch
	// assembly path) and ragged ones (the per-code fallback).
	rng := rand.New(rand.NewSource(45))
	for _, d := range []int{1, 5, 8, 37, 64, 128} {
		tr := NewSQ8Trainer(d)
		base := make([][]float32, 33)
		for i := range base {
			v := randVec(rng, d)
			base[i] = v
			tr.Observe(v)
		}
		sq := tr.Finish()
		q := randVec(rng, d)
		codes := make([][]byte, len(base))
		for i, v := range base {
			codes[i] = make([]byte, d)
			sq.Encode(v, codes[i])
		}
		out := make([]float32, len(codes))
		for _, k := range parityKernels(t) {
			for i := range out {
				out[i] = -1
			}
			k.L2SqrSQ8Batch(q, codes, sq, out)
			for i, c := range codes {
				want := k.L2SqrSQ8(q, c, sq)
				if math.Float32bits(out[i]) != math.Float32bits(want) {
					t.Fatalf("%s d=%d code %d: batch %x, solo %x", k.Name(), d, i,
						math.Float32bits(out[i]), math.Float32bits(want))
				}
			}
		}
	}
}
