package vec

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkKernel* is the microbench surface the CI gate
// (cmd/kernelgate) watches: solo, rows-batch, and NT shapes for every
// registered kernel. Names are stable — the gate parses
// BenchmarkKernelSolo/<kernel>/d=<dim> etc. SetBytes records the
// traffic of reading both operands, so results print GB/s; the gate
// compares ratios against the ref kernel measured in the same run,
// which keeps the checked-in baseline machine-independent.

func benchVecs(n, d int) []float32 {
	rng := rand.New(rand.NewSource(9))
	out := make([]float32, n*d)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func BenchmarkKernelSolo(b *testing.B) {
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				x := benchVecs(1, d)
				y := benchVecs(1, d)
				b.SetBytes(int64(2 * 4 * d))
				var sink float32
				for i := 0; i < b.N; i++ {
					sink += k.L2Sqr(x, y)
				}
				_ = sink
			})
		}
	}
}

func BenchmarkKernelRowsBatch(b *testing.B) {
	const rowsN = 256
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				flat := benchVecs(rowsN, d)
				rows := make([][]float32, rowsN)
				for i := range rows {
					rows[i] = flat[i*d : (i+1)*d]
				}
				q := benchVecs(1, d)
				out := make([]float32, rowsN)
				b.SetBytes(int64(2 * 4 * d * rowsN))
				for i := 0; i < b.N; i++ {
					k.L2SqrBatch(q, rows, out)
				}
			})
		}
	}
}

func BenchmarkKernelNT(b *testing.B) {
	// The multi-query probe shape: a bucketful of tuples (m rows)
	// against a small batch of queries (n).
	const m, n = 256, 8
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				a := benchVecs(m, d)
				bm := benchVecs(n, d)
				c := make([]float32, m*n)
				b.SetBytes(int64(4 * d * (m + n)))
				for i := 0; i < b.N; i++ {
					k.L2SqrNT(a, m, d, bm, n, c)
				}
			})
		}
	}
}

func BenchmarkKernelSQ8(b *testing.B) {
	const rowsN = 256
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				flat := benchVecs(rowsN, d)
				tr := NewSQ8Trainer(d)
				for i := 0; i < rowsN; i++ {
					tr.Observe(flat[i*d : (i+1)*d])
				}
				sq := tr.Finish()
				codes := make([]byte, rowsN*d)
				for i := 0; i < rowsN; i++ {
					sq.Encode(flat[i*d:(i+1)*d], codes[i*d:(i+1)*d])
				}
				q := benchVecs(1, d)
				b.SetBytes(int64(rowsN * d * 5)) // 4B query float + 1B code
				var sink float32
				for i := 0; i < b.N; i++ {
					for r := 0; r < rowsN; r++ {
						sink += k.L2SqrSQ8(q, codes[r*d:(r+1)*d], sq)
					}
				}
				_ = sink
			})
		}
	}
}

func BenchmarkKernelSQ8Batch(b *testing.B) {
	// The direct page-batch asymmetric form — one kernel call for a
	// pageful of codes.
	const rowsN = 256
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				flat := benchVecs(rowsN, d)
				tr := NewSQ8Trainer(d)
				for i := 0; i < rowsN; i++ {
					tr.Observe(flat[i*d : (i+1)*d])
				}
				sq := tr.Finish()
				codes := make([][]byte, rowsN)
				for i := range codes {
					codes[i] = make([]byte, d)
					sq.Encode(flat[i*d:(i+1)*d], codes[i])
				}
				q := benchVecs(1, d)
				out := make([]float32, rowsN)
				b.SetBytes(int64(rowsN * d * 5))
				for i := 0; i < b.N; i++ {
					k.L2SqrSQ8Batch(q, codes, sq, out)
				}
			})
		}
	}
}

func BenchmarkKernelDotSQ8(b *testing.B) {
	// The decomposed plain-scan inner loop: a pageful of uint8 dot
	// products (the norms are precomputed outside the per-candidate
	// path, so this shape IS the per-candidate kernel cost).
	const rowsN = 256
	for _, name := range RegisteredKernelNames() {
		k, _ := ForName(name)
		for _, d := range []int{128, 960} {
			b.Run(fmt.Sprintf("%s/d=%d", name, d), func(b *testing.B) {
				w := benchVecs(1, d)
				codes := make([][]byte, rowsN)
				rng := rand.New(rand.NewSource(11))
				for i := range codes {
					codes[i] = make([]byte, d)
					rng.Read(codes[i])
				}
				out := make([]float32, rowsN)
				b.SetBytes(int64(rowsN * d)) // 1B code stream dominates
				for i := 0; i < b.N; i++ {
					k.DotSQ8Batch(w, codes, out)
				}
			})
		}
	}
}
