package vec

// The avx2 kernel: 8-lane vector subtract/multiply/add in Go assembly
// (kernel_avx2_amd64.s) with four YMM accumulators — 32 floats in
// flight per iteration. Registration is gated by a runtime CPUID probe:
// the instruction set must be present (CPUID.7.0:EBX.AVX2), the OS must
// have enabled YMM state saving (CPUID.1:ECX.OSXSAVE + XGETBV XCR0
// bits 1–2), and plain AVX must be advertised. On hosts that fail the
// probe the kernel never registers and `SET distance_kernel = avx2`
// falls back to the default kernel (vec.ForName documents this).
//
// Parity: the scalar tail is added sequentially after the vector body,
// so the summation order is a pure function of the vector length —
// batched forms call the solo form per pair and are bit-identical to
// it. Denormals are handled by hardware IEEE semantics (Go does not
// set DAZ/FTZ in MXCSR), so no flush-to-zero divergence from the
// scalar kernels.

// l2sqrAVX2 sums ‖x−y‖² over the first n elements; n must be a
// positive multiple of 8. Implemented in kernel_avx2_amd64.s.
func l2sqrAVX2(x, y *float32, n int) float32

// l2sqrSQ8AVX2 sums the asymmetric ‖q − (mn + st·code)‖² over the first
// n elements, decoding the uint8 codes in-register; n must be a
// positive multiple of 8. Implemented in kernel_avx2_amd64.s.
func l2sqrSQ8AVX2(q *float32, code *byte, mn, st *float32, n int) float32

// l2sqrSQ8BatchAVX2 writes the solo asymmetric distance of q to every
// code into out, with one VZEROUPPER for the whole batch; d must be a
// positive multiple of 8 and every code must hold ≥ d bytes.
// Implemented in kernel_avx2_amd64.s.
func l2sqrSQ8BatchAVX2(q *float32, codes [][]byte, mn, st *float32, d int, out *float32)

// dotSQ8BatchAVX2 writes the dot product of w with every decoded code
// into out, with one VZEROUPPER for the whole batch; d must be a
// positive multiple of 8 and every code must hold ≥ d bytes.
// Implemented in kernel_avx2_amd64.s.
func dotSQ8BatchAVX2(w *float32, codes [][]byte, d int, out *float32)

// cpuidAsm executes CPUID with the given leaf/subleaf.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0.
func xgetbvAsm() (eax, edx uint32)

// haveAVX2 reports whether the host CPU and OS support AVX2 execution.
func haveAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	// The SQ8 body fuses decode and accumulate with VFMADD, so FMA is
	// part of this kernel's feature set (every AVX2 part since Haswell
	// and Zen ships it, but the probe checks rather than assumes).
	const fmaBit = 1 << 12
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 || ecx1&fmaBit == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&6 != 6 { // XMM and YMM state must both be OS-managed
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func init() {
	if haveAVX2() {
		RegisterKernel(avx2Kernel{})
	}
}

// avx2Kernel dispatches the assembly body with a sequential scalar
// tail. Batched forms reuse the solo form inside 8-row cache blocks,
// exactly like unrolledKernel, so solo/batch bit-parity holds by
// construction.
type avx2Kernel struct{}

// Name implements Kernel.
func (avx2Kernel) Name() string { return "avx2" }

// L2Sqr implements Kernel.
func (avx2Kernel) L2Sqr(x, y []float32) float32 {
	n := len(x)
	y = y[:n]
	n8 := n &^ 7
	var s float32
	if n8 > 0 {
		s = l2sqrAVX2(&x[0], &y[0], n8)
	}
	for i := n8; i < n; i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// L2SqrBatch implements Kernel.
func (k avx2Kernel) L2SqrBatch(q []float32, rows [][]float32, out []float32) {
	for i, r := range rows {
		out[i] = k.L2Sqr(q, r)
	}
}

// L2SqrNT implements Kernel.
func (k avx2Kernel) L2SqrNT(a []float32, m, kk int, b []float32, n int, c []float32) {
	for i0 := 0; i0 < m; i0 += 8 {
		i1 := min(i0+8, m)
		for j := 0; j < n; j++ {
			brow := b[j*kk : (j+1)*kk]
			for i := i0; i < i1; i++ {
				c[i*n+j] = k.L2Sqr(a[i*kk:(i+1)*kk], brow)
			}
		}
	}
}

// L2SqrNTRows implements Kernel.
func (k avx2Kernel) L2SqrNTRows(rows [][]float32, kk int, b []float32, n int, c []float32) {
	m := len(rows)
	for i0 := 0; i0 < m; i0 += 8 {
		i1 := min(i0+8, m)
		for j := 0; j < n; j++ {
			brow := b[j*kk : (j+1)*kk]
			for i := i0; i < i1; i++ {
				c[i*n+j] = k.L2Sqr(rows[i][:kk], brow)
			}
		}
	}
}

// L2SqrSQ8 implements Kernel. The byte decode happens in-register
// (VPMOVZXBD widen, VCVTDQ2PS convert), so the quantized form pays no
// scalar gather; per-element arithmetic matches the scalar kernels
// (st·c, +mn, subtract from q, square) and only the reduction order
// differs, as with L2Sqr.
func (avx2Kernel) L2SqrSQ8(q []float32, code []byte, sq *SQ8) float32 {
	n := len(q)
	code = code[:n]
	mn := sq.Min[:n]
	st := sq.Step[:n]
	n8 := n &^ 7
	var s float32
	if n8 > 0 {
		s = l2sqrSQ8AVX2(&q[0], &code[0], &mn[0], &st[0], n8)
	}
	for i := n8; i < n; i++ {
		d := q[i] - (mn[i] + st[i]*float32(code[i]))
		s += d * d
	}
	return s
}

// L2SqrSQ8Batch implements Kernel. For 8-aligned dimensions the whole
// batch runs in one assembly call (per-code bodies identical to the
// solo routine, so out[i] is bit-equal to the solo form); otherwise the
// scalar tail forces the per-code path.
func (k avx2Kernel) L2SqrSQ8Batch(q []float32, codes [][]byte, sq *SQ8, out []float32) {
	n := len(q)
	if n == 0 || n&7 != 0 {
		for i, c := range codes {
			out[i] = k.L2SqrSQ8(q, c, sq)
		}
		return
	}
	if len(codes) == 0 {
		return
	}
	out = out[:len(codes)]
	mn := sq.Min[:n]
	st := sq.Step[:n]
	// The asm body trusts every code to span the dimension; check here so
	// a short code panics like the solo form's code[:n] reslice would.
	for _, c := range codes {
		_ = c[n-1]
	}
	l2sqrSQ8BatchAVX2(&q[0], codes, &mn[0], &st[0], n, &out[0])
}

// DotSQ8Batch implements Kernel. For 8-aligned dimensions the whole
// batch runs in one assembly call; a ragged dimension falls back to the
// generic unrolled body (there is no cross-kernel bit contract on this
// method, only per-lane purity, which both paths satisfy — and a given
// dimension always takes the same path, so a host scores consistently).
func (avx2Kernel) DotSQ8Batch(w []float32, codes [][]byte, out []float32) {
	n := len(w)
	if n == 0 || n&7 != 0 {
		unrolledKernel{}.DotSQ8Batch(w, codes, out)
		return
	}
	if len(codes) == 0 {
		return
	}
	out = out[:len(codes)]
	for _, c := range codes {
		_ = c[n-1]
	}
	dotSQ8BatchAVX2(&w[0], codes, n, &out[0])
}
