package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

func randVec(rng *rand.Rand, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestL2SqrMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 96, 100, 128, 256, 960} {
		x, y := randVec(rng, d), randVec(rng, d)
		ref := float64(L2SqrRef(x, y))
		got := float64(L2Sqr(x, y))
		if !almostEqual(ref, got, 1e-5) {
			t.Errorf("d=%d: L2Sqr=%v, L2SqrRef=%v", d, got, ref)
		}
	}
}

func TestL2SqrZeroForIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 33)
	if got := L2Sqr(x, x); got != 0 {
		t.Errorf("L2Sqr(x,x) = %v, want 0", got)
	}
}

func TestL2SqrPropertyNonNegativeSymmetric(t *testing.T) {
	f := func(a, b [16]float32) bool {
		x, y := a[:], b[:]
		d1, d2 := L2Sqr(x, y), L2Sqr(y, x)
		return d1 >= 0 && d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 5, 8, 127, 128} {
		x, y := randVec(rng, d), randVec(rng, d)
		var ref float64
		for i := range x {
			ref += float64(x[i]) * float64(y[i])
		}
		if got := float64(Dot(x, y)); !almostEqual(ref, got, 1e-4) {
			t.Errorf("d=%d: Dot=%v, naive=%v", d, got, ref)
		}
	}
}

func TestNormIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 64)
	if got, want := float64(Norm2(x)), float64(Dot(x, x)); got != want {
		t.Errorf("Norm2 = %v, Dot(x,x) = %v", got, want)
	}
	n := float64(Norm(x))
	if !almostEqual(n*n, float64(Norm2(x)), 1e-5) {
		t.Errorf("Norm² = %v, Norm2 = %v", n*n, Norm2(x))
	}
}

func TestCosineDistance(t *testing.T) {
	x := []float32{1, 0}
	if got := CosineDistance(x, []float32{2, 0}); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("cosine distance of parallel vectors = %v, want 0", got)
	}
	if got := CosineDistance(x, []float32{0, 3}); !almostEqual(float64(got), 1, 1e-6) {
		t.Errorf("cosine distance of orthogonal vectors = %v, want 1", got)
	}
	if got := CosineDistance(x, []float32{-1, 0}); !almostEqual(float64(got), 2, 1e-6) {
		t.Errorf("cosine distance of opposite vectors = %v, want 2", got)
	}
	if got := CosineDistance(x, []float32{0, 0}); got != 1 {
		t.Errorf("cosine distance with zero vector = %v, want 1", got)
	}
}

func TestDistanceDispatch(t *testing.T) {
	x, y := []float32{1, 2}, []float32{3, 4}
	if got, want := Distance(L2, x, y), L2Sqr(x, y); got != want {
		t.Errorf("Distance(L2) = %v, want %v", got, want)
	}
	if got, want := Distance(InnerProduct, x, y), -Dot(x, y); got != want {
		t.Errorf("Distance(IP) = %v, want %v", got, want)
	}
	if got, want := Distance(Cosine, x, y), CosineDistance(x, y); got != want {
		t.Errorf("Distance(Cosine) = %v, want %v", got, want)
	}
}

func TestParseMetric(t *testing.T) {
	cases := map[string]Metric{"l2": L2, "0": L2, "ip": InnerProduct, "1": InnerProduct, "cosine": Cosine, "2": Cosine}
	for s, want := range cases {
		got, err := ParseMetric(s)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMetric("hamming"); err == nil {
		t.Error("ParseMetric accepted unknown metric")
	}
}

func TestArgmin(t *testing.T) {
	i, v := Argmin([]float32{3, 1, 2})
	if i != 1 || v != 1 {
		t.Errorf("Argmin = (%d, %v), want (1, 1)", i, v)
	}
	i, _ = Argmin([]float32{5})
	if i != 0 {
		t.Errorf("Argmin singleton = %d", i)
	}
}

func TestFlatBasics(t *testing.T) {
	f := NewFlat(3, 2)
	if f.N() != 0 {
		t.Fatalf("empty Flat N = %d", f.N())
	}
	f.Append([]float32{1, 2, 3})
	f.Append([]float32{4, 5, 6})
	if f.N() != 2 {
		t.Fatalf("N = %d, want 2", f.N())
	}
	if got := f.Row(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("Row(1) = %v", got)
	}
	if f.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", f.Bytes())
	}
	clone := f.Clone()
	clone.Row(0)[0] = 99
	if f.Row(0)[0] == 99 {
		t.Error("Clone shares storage with original")
	}
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong dimension did not panic")
		}
	}()
	f.Append([]float32{1})
}

func TestDistancesL2NaiveVsDecomposed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny, d := 17, 23, 48
	xs, ys := randVec(rng, nx*d), randVec(rng, ny*d)
	naive := make([]float32, nx*ny)
	distancesL2Naive(xs, nx, ys, ny, d, naive)
	for _, threads := range []int{1, 4} {
		dec := make([]float32, nx*ny)
		distancesL2Decomposed(xs, nx, ys, ny, d, dec, decomposedOpts{Threads: threads})
		for i := range naive {
			if !almostEqual(float64(naive[i]), float64(dec[i]), 1e-3) {
				t.Fatalf("threads=%d: pair %d: naive %v vs decomposed %v", threads, i, naive[i], dec[i])
			}
		}
	}
}

func TestDistancesL2DecomposedWithCachedNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nx, ny, d := 5, 9, 32
	xs, ys := randVec(rng, nx*d), randVec(rng, ny*d)
	norms := Norms2(ys, ny, d, make([]float32, ny))
	a := make([]float32, nx*ny)
	b := make([]float32, nx*ny)
	distancesL2Decomposed(xs, nx, ys, ny, d, a, decomposedOpts{Threads: 1})
	distancesL2Decomposed(xs, nx, ys, ny, d, b, decomposedOpts{Threads: 1, YNorms2: norms})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached norms changed result at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAssignBatchGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, k, d := 300, 11, 24
	xs := randVec(rng, n*d)
	cs := randVec(rng, k*d)
	for _, threads := range []int{1, 3} {
		a1 := make([]int32, n)
		a2 := make([]int32, n)
		AssignBatch(xs, n, cs, k, d, a1, nil, false, threads)
		AssignBatch(xs, n, cs, k, d, a2, nil, true, threads)
		for i := range a1 {
			if a1[i] != a2[i] {
				// Ties can flip under FP reordering; verify it is a tie.
				x := xs[i*d : (i+1)*d]
				d1 := L2SqrRef(x, cs[a1[i]*int32(d):(a1[i]+1)*int32(d)])
				d2 := L2SqrRef(x, cs[a2[i]*int32(d):(a2[i]+1)*int32(d)])
				if !almostEqual(float64(d1), float64(d2), 1e-4) {
					t.Fatalf("threads=%d row %d: naive→%d (%v), gemm→%d (%v)", threads, i, a1[i], d1, a2[i], d2)
				}
			}
		}
	}
}

func TestAssignBatchDists(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, k, d := 50, 7, 16
	xs, cs := randVec(rng, n*d), randVec(rng, k*d)
	assign := make([]int32, n)
	dists := make([]float32, n)
	AssignBatch(xs, n, cs, k, d, assign, dists, true, 1)
	for i := 0; i < n; i++ {
		want := L2SqrRef(xs[i*d:(i+1)*d], cs[int(assign[i])*d:(int(assign[i])+1)*d])
		if !almostEqual(float64(dists[i]), float64(want), 1e-3) {
			t.Fatalf("row %d: dist %v, recomputed %v", i, dists[i], want)
		}
	}
}

func TestNorms2(t *testing.T) {
	data := []float32{3, 4, 0, 0, 1, 1}
	out := Norms2(data, 3, 2, make([]float32, 3))
	want := []float32{25, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Norms2[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}
