package vec

import (
	"math/rand"
	"testing"

	"vecstudy/internal/blas"
)

// TestBlasL2SqrNTMatchesL2SqrRef pins the contract the serving-side
// query coalescer depends on: blas.L2SqrNT must be bit-for-bit equal to
// the per-pair L2SqrRef kernel the solo search paths use for centroid
// scoring, for every batch size. (The blas package cannot import vec —
// vec imports blas — so the cross-kernel assertion lives here.)
func TestBlasL2SqrNTMatchesL2SqrRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 4, 5, 13, 32} {
		for _, k := range []int{1, 96, 130} {
			const n = 37
			a := make([]float32, m*k)
			b := make([]float32, n*k)
			for i := range a {
				a[i] = rng.Float32()*2 - 1
			}
			for i := range b {
				b[i] = rng.Float32()*2 - 1
			}
			c := make([]float32, m*n)
			blas.L2SqrNT(a, m, k, b, n, c)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want := L2SqrRef(a[i*k:(i+1)*k], b[j*k:(j+1)*k])
					if c[i*n+j] != want {
						t.Fatalf("m=%d k=%d: C[%d][%d] = %x, L2SqrRef = %x", m, k, i, j, c[i*n+j], want)
					}
				}
			}
		}
	}
}
