package vec

import (
	"runtime"
	"sync"

	"vecstudy/internal/blas"
)

// Pairwise squared-L2 scoring for K-means training. The two private
// implementations correspond to the paper's RC#1:
//
//   - distancesL2Naive: the PASE approach — one scalar distance loop per
//     (query, base) pair.
//   - distancesL2Decomposed: the Faiss approach — decompose
//     ‖x−c‖² = ‖x‖² + ‖c‖² − 2·x·c and compute all inner products at once
//     with a blocked SGEMM, reusing precomputed norms.
//
// Both are implementation details of AssignBatch: search-path bucket
// scoring goes through the Kernel interface (kernel.go) instead, so
// there is exactly one way to score a bucket.

// distancesL2Naive writes ‖x_i − y_j‖² into out[i*ny+j] for every pair,
// using the reference scalar kernel. xs is nx×d, ys is ny×d, both
// row-major. out must have length ≥ nx*ny.
func distancesL2Naive(xs []float32, nx int, ys []float32, ny, d int, out []float32) {
	for i := 0; i < nx; i++ {
		x := xs[i*d : (i+1)*d]
		row := out[i*ny : (i+1)*ny]
		for j := 0; j < ny; j++ {
			row[j] = L2SqrRef(x, ys[j*d:(j+1)*d])
		}
	}
}

// decomposedOpts controls distancesL2Decomposed.
type decomposedOpts struct {
	// Threads is the parallelism for the SGEMM call; ≤ 0 means all CPUs,
	// 1 forces serial execution (the paper's single-thread default).
	Threads int
	// YNorms2, if non-nil, supplies precomputed squared norms of the ys
	// rows, avoiding recomputation across batches (Faiss caches centroid
	// norms at train time; RC#7 relies on the same trick for PQ tables).
	YNorms2 []float32
}

// distancesL2Decomposed writes ‖x_i − y_j‖² into out[i*ny+j] using the
// norm decomposition plus blocked SGEMM. Results can differ from the naive
// kernel by small floating-point error; callers that need exact agreement
// (tests) should use a tolerance.
func distancesL2Decomposed(xs []float32, nx int, ys []float32, ny, d int, out []float32, opts decomposedOpts) {
	if nx == 0 || ny == 0 {
		return
	}
	yn := opts.YNorms2
	if yn == nil {
		yn = Norms2(ys, ny, d, make([]float32, ny))
	}
	// out temporarily holds the inner products x_i·y_j.
	threads := opts.Threads
	if threads == 1 {
		blas.GemmNT(xs, nx, d, ys, ny, out)
	} else {
		blas.GemmNTParallel(xs, nx, d, ys, ny, out, threads)
	}
	for i := 0; i < nx; i++ {
		xn := Norm2(xs[i*d : (i+1)*d])
		row := out[i*ny : (i+1)*ny]
		for j := 0; j < ny; j++ {
			dist := xn + yn[j] - 2*row[j]
			if dist < 0 { // clamp FP cancellation noise
				dist = 0
			}
			row[j] = dist
		}
	}
}

// AssignBatch maps each of the nx rows of xs to the index of its nearest
// row in ys (the centroids), writing assignments and the corresponding
// squared distances. If useGemm is true the decomposed SGEMM path is used
// (Faiss/RC#1 on), otherwise the naive per-pair path (PASE/RC#1 off).
// threads parallelizes across x rows; ≤ 1 is serial. With an empty
// centroid set (ny == 0) there is no nearest row: assign and dists are
// left untouched instead of panicking on the first centroid slice.
func AssignBatch(xs []float32, nx int, ys []float32, ny, d int, assign []int32, dists []float32, useGemm bool, threads int) {
	if nx == 0 || ny == 0 {
		return
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if !useGemm {
		parallelRows(nx, threads, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := xs[i*d : (i+1)*d]
				best, bestD := int32(0), L2SqrRef(x, ys[:d])
				for j := 1; j < ny; j++ {
					dd := L2SqrRef(x, ys[j*d:(j+1)*d])
					if dd < bestD {
						best, bestD = int32(j), dd
					}
				}
				assign[i] = best
				if dists != nil {
					dists[i] = bestD
				}
			}
		})
		return
	}
	yn := Norms2(ys, ny, d, make([]float32, ny))
	// Process x in batches so the distance matrix stays cache/memory
	// friendly even for large n.
	const batch = 1024
	parallelRows(nx, threads, func(lo, hi int) {
		buf := make([]float32, batch*ny)
		for b := lo; b < hi; b += batch {
			bn := min(batch, hi-b)
			distancesL2Decomposed(xs[b*d:(b+bn)*d], bn, ys, ny, d, buf, decomposedOpts{Threads: 1, YNorms2: yn})
			for i := 0; i < bn; i++ {
				j, v := Argmin(buf[i*ny : (i+1)*ny])
				assign[b+i] = int32(j)
				if dists != nil {
					dists[b+i] = v
				}
			}
		}
	})
}

// parallelRows splits [0, n) into contiguous chunks across up to threads
// goroutines and invokes fn on each chunk.
func parallelRows(n, threads int, fn func(lo, hi int)) {
	if threads <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if threads > n {
		threads = n
	}
	per := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * per
		if lo >= n {
			break
		}
		hi := min(lo+per, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
