package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vecstudy/internal/wire"
)

// PoolConn is a pooled connection. Tag is opaque caller state that
// survives Get/Put cycles — the cluster router uses it to remember which
// session settings (SET statements) have been replayed onto this
// connection, so a pooled conn changing hands between sessions with
// different knobs is re-primed instead of leaking the previous session's
// state.
type PoolConn struct {
	*Conn
	Tag string
}

// Pool is a bounded connection pool for one backend address. It bounds
// the *total* number of connections outstanding (checked out + idle) at
// Size: Get blocks (under its context) when the pool is exhausted, which
// gives the router natural per-backend backpressure instead of letting
// every concurrent caller Dial its own connection.
//
// Put decides reuse by the error that ended the checkout: a *wire.Error
// is a statement-level failure on a healthy protocol stream, so the conn
// is returned to the pool; any other error (dial, deadline, broken pipe,
// torn frame) means the stream state is unknown and the conn is closed.
type Pool struct {
	addr        string
	dialTimeout time.Duration
	tokens      chan struct{} // capacity Size; holding a token = owning a conn slot

	mu     sync.Mutex
	idle   []*PoolConn
	closed bool
}

// NewPool creates a pool of at most size connections to addr. size <= 0
// means 8; dialTimeout <= 0 means 5s.
func NewPool(addr string, size int, dialTimeout time.Duration) *Pool {
	if size <= 0 {
		size = 8
	}
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	return &Pool{
		addr:        addr,
		dialTimeout: dialTimeout,
		tokens:      make(chan struct{}, size),
	}
}

// Addr reports the backend address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Size reports the pool's connection bound.
func (p *Pool) Size() int { return cap(p.tokens) }

// Idle reports how many connections are currently parked in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Get checks a connection out, reusing an idle one or dialing a fresh
// one. It blocks while the pool is exhausted until a conn is returned or
// ctx ends. Every successful Get must be paired with exactly one Put.
func (p *Pool) Get(ctx context.Context) (*PoolConn, error) {
	select {
	case p.tokens <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("client: pool %s: %w", p.addr, ctx.Err())
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.tokens
		return nil, fmt.Errorf("client: pool %s is closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	c, err := DialTimeout(p.addr, p.dialTimeout)
	if err != nil {
		<-p.tokens
		return nil, err
	}
	return &PoolConn{Conn: c}, nil
}

// Put returns a checked-out connection. resultErr is the error (if any)
// from the conn's last use: statement-level errors (*wire.Error) keep
// the conn poolable; transport-level errors close it so a broken stream
// is never handed to the next caller.
func (p *Pool) Put(pc *PoolConn, resultErr error) {
	if pc == nil {
		return
	}
	defer func() { <-p.tokens }()
	if resultErr != nil && !isStatementError(resultErr) {
		pc.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.Close()
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}

// Discard closes a checked-out connection and releases its slot without
// pooling it, regardless of error state.
func (p *Pool) Discard(pc *PoolConn) {
	if pc == nil {
		return
	}
	pc.Close()
	<-p.tokens
}

// Close closes every idle connection and marks the pool closed: future
// Gets fail, and checked-out conns are closed at Put.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		pc.Close()
	}
}

// isStatementError reports whether err is a statement-level failure
// that leaves the connection's stream healthy. A shutdown error is
// excluded — the server is about to close the conn, so pooling it would
// hand the next caller a dying stream.
func isStatementError(err error) bool {
	var werr *wire.Error
	if !errors.As(err, &werr) {
		return false
	}
	return werr.Code != wire.CodeShutdown
}
