package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vecstudy/internal/wire"
)

// fakeServer is a minimal wire-protocol endpoint: Ping → Done, "boom" →
// statement error (stream stays healthy), "die" → connection dropped
// mid-session (transport error), anything else → empty result. It counts
// accepted connections so tests can observe dials.
type fakeServer struct {
	lis      net.Listener
	accepted atomic.Int64
}

func startFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{lis: lis}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			fs.accepted.Add(1)
			go fs.serve(conn)
		}
	}()
	return fs
}

func (fs *fakeServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case wire.TPing:
			wire.WriteFrame(conn, wire.TDone, wire.EncodeDone(0))
		case wire.TQuery:
			switch wire.DecodeQuery(payload) {
			case "boom":
				wire.WriteFrame(conn, wire.TError, wire.EncodeError(wire.CodeError, "boom"))
			case "die":
				return
			default:
				wire.WriteResult(conn, &wire.Result{Msg: "OK"})
			}
		case wire.TTerminate:
			return
		}
	}
}

func (fs *fakeServer) addr() string { return fs.lis.Addr().String() }

func TestPoolReuse(t *testing.T) {
	fs := startFakeServer(t)
	p := NewPool(fs.addr(), 4, time.Second)
	defer p.Close()

	ctx := context.Background()
	pc, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Ping(); err != nil {
		t.Fatal(err)
	}
	pc.Tag = "primed"
	p.Put(pc, nil)

	pc2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pc2 != pc {
		t.Error("pool dialed a fresh conn instead of reusing the idle one")
	}
	if pc2.Tag != "primed" {
		t.Errorf("Tag = %q, want it preserved across Get/Put", pc2.Tag)
	}
	p.Put(pc2, nil)
	if got := fs.accepted.Load(); got != 1 {
		t.Errorf("server accepted %d conns, want 1", got)
	}
	if p.Idle() != 1 {
		t.Errorf("idle = %d, want 1", p.Idle())
	}
}

func TestPoolBounded(t *testing.T) {
	fs := startFakeServer(t)
	p := NewPool(fs.addr(), 2, time.Second)
	defer p.Close()

	ctx := context.Background()
	a, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Third Get must block until a conn is returned.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := p.Get(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted pool Get err = %v, want deadline exceeded", err)
	}

	done := make(chan *PoolConn, 1)
	go func() {
		pc, err := p.Get(ctx)
		if err != nil {
			t.Error(err)
		}
		done <- pc
	}()
	p.Put(a, nil)
	select {
	case pc := <-done:
		p.Put(pc, nil)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after Put")
	}
	p.Put(b, nil)
}

func TestPoolClosesBrokenConns(t *testing.T) {
	fs := startFakeServer(t)
	p := NewPool(fs.addr(), 2, time.Second)
	defer p.Close()
	ctx := context.Background()

	// A statement error keeps the conn poolable.
	pc, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, execErr := pc.Execute("boom")
	var werr *wire.Error
	if !errors.As(execErr, &werr) {
		t.Fatalf("Execute(boom) err = %v, want wire.Error", execErr)
	}
	p.Put(pc, execErr)
	if p.Idle() != 1 {
		t.Fatalf("idle after statement error = %d, want 1", p.Idle())
	}

	// A transport error (server dropped the conn) closes it: the next
	// Get dials fresh instead of handing out the broken stream.
	pc2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pc2 != pc {
		t.Fatal("expected the pooled conn back")
	}
	pc2.SetReadTimeout(time.Second)
	_, execErr = pc2.Execute("die")
	if execErr == nil || errors.As(execErr, &werr) {
		t.Fatalf("Execute(die) err = %v, want transport error", execErr)
	}
	p.Put(pc2, execErr)
	if p.Idle() != 0 {
		t.Fatalf("idle after transport error = %d, want 0 (conn closed)", p.Idle())
	}
	pc3, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc3.Ping(); err != nil {
		t.Fatalf("fresh conn after broken one: %v", err)
	}
	p.Put(pc3, nil)
	if got := fs.accepted.Load(); got != 2 {
		t.Errorf("server accepted %d conns, want 2 (original + replacement)", got)
	}
}

func TestPoolClose(t *testing.T) {
	fs := startFakeServer(t)
	p := NewPool(fs.addr(), 2, time.Second)
	ctx := context.Background()
	pc, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(idle, nil)

	p.Close()
	if _, err := p.Get(ctx); err == nil {
		t.Error("Get on a closed pool succeeded")
	}
	// A conn checked out across Close is closed at Put, not pooled.
	p.Put(pc, nil)
	if p.Idle() != 0 {
		t.Errorf("idle after close = %d, want 0", p.Idle())
	}
}
