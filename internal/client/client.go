// Package client is the Go client for the serving layer: dial a vdb
// server, execute SQL, read typed results over internal/wire.
//
// A Conn is a plain sequential protocol endpoint: one request, one
// response. It is safe for exactly one goroutine — open one Conn per
// worker (connection reuse across queries is cheap; sharing one across
// goroutines is not supported, matching libpq's PGconn contract).
package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"vecstudy/internal/wire"
)

// Conn is one client connection.
type Conn struct {
	c           net.Conn
	br          *bufio.Reader
	bw          *bufio.Writer
	dialTimeout time.Duration
	readTimeout time.Duration
}

// Dial connects to a vdb server at addr (host:port).
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a connect timeout. The same timeout bounds
// Ping responses, so a hung server fails the probe instead of blocking
// it forever.
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Conn{
		c:           c,
		br:          bufio.NewReaderSize(c, 64<<10),
		bw:          bufio.NewWriterSize(c, 64<<10),
		dialTimeout: timeout,
	}, nil
}

// SetReadTimeout bounds how long Execute and Ping wait for a response
// (0, the default for Execute, waits as long as the server takes — the
// server enforces its own per-query timeout). A Conn whose read timed
// out may have a partial frame buffered and must be closed, like a
// query-timeout rejection.
func (c *Conn) SetReadTimeout(d time.Duration) { c.readTimeout = d }

// readResult reads one result, bounded by timeout when it is > 0.
func (c *Conn) readResult(timeout time.Duration) (*wire.Result, error) {
	if timeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer c.c.SetReadDeadline(time.Time{})
	}
	return wire.ReadResult(c.br)
}

// Execute runs one SQL statement and returns its full result. A
// statement the server rejects (parse/execution error, admission
// rejection, timeout) is returned as a *wire.Error; transport failures
// are plain errors.
func (c *Conn) Execute(sqlText string) (*wire.Result, error) {
	if err := c.send(wire.TQuery, wire.EncodeQuery(sqlText)); err != nil {
		return nil, err
	}
	res, err := c.readResult(c.readTimeout)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Ping round-trips a liveness probe. Unlike Execute it always runs
// under a read deadline (SetReadTimeout if set, else the dial timeout):
// a liveness probe that can hang is not a liveness probe.
func (c *Conn) Ping() error {
	if err := c.send(wire.TPing, nil); err != nil {
		return err
	}
	timeout := c.readTimeout
	if timeout <= 0 {
		timeout = c.dialTimeout
	}
	_, err := c.readResult(timeout)
	return err
}

func (c *Conn) send(t wire.Type, payload []byte) error {
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Close says goodbye (best effort) and closes the connection.
func (c *Conn) Close() error {
	c.send(wire.TTerminate, nil)
	return c.c.Close()
}
