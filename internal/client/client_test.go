package client

import (
	"net"
	"testing"
	"time"
)

// silentServer accepts connections and swallows input without ever
// answering — the shape of a hung or half-dead server.
func silentServer(t *testing.T) net.Addr {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr()
}

func TestPingTimesOutAgainstSilentServer(t *testing.T) {
	addr := silentServer(t)
	c, err := DialTimeout(addr.String(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against a silent server returned nil")
	}
	// The probe must come back around the dial timeout, not hang.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("ping took %v, want ~150ms", elapsed)
	}
}

func TestExecuteHonorsReadTimeout(t *testing.T) {
	addr := silentServer(t)
	c, err := DialTimeout(addr.String(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadTimeout(150 * time.Millisecond)
	start := time.Now()
	if _, err := c.Execute("SELECT 1"); err == nil {
		t.Fatal("execute against a silent server returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("execute took %v, want ~150ms", elapsed)
	}
}
