// Command vdb is a SQL shell and network server over the generalized
// vector database — the PostgreSQL-style engine with the PASE-style
// index access methods. It speaks the dialect of internal/pg/sql:
//
//	CREATE TABLE t (id int, vec float[]);
//	INSERT INTO t VALUES (1, '{0.1, 0.2, 0.3}');
//	CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 256);
//	SET nprobe = 20;
//	SELECT id, distance FROM t ORDER BY vec <-> '{0.1,0.2,0.3}' LIMIT 10;
//
// With -d the database is file-backed (and persists across runs); without
// it everything lives in memory. Statements may also be piped on stdin;
// in that mode vdb exits non-zero if any statement failed (after
// draining the rest of the input), so scripts and CI can detect bad SQL.
//
// Serving modes:
//
//	vdb -listen :5462            serve the database over TCP
//	vdb -connect host:5462       remote shell against a running server
//	vdb -connect host:5462 -ping liveness probe (exit 0 = serving)
//
// Router mode fronts a sharded cluster instead of a local database:
//
//	vdb -listen :5480 -route -shards "h1:5462,h2:5462;h3:5462"
//
// serves the same wire protocol, but scatter-gathers each query across
// the shard servers (';' separates shards, ',' separates a shard's
// replicas). SHOW server_stats additionally reports the router's
// fanout/retry/failover/degraded counters.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vecstudy/internal/client"
	"vecstudy/internal/cluster"
	_ "vecstudy/internal/pase/all"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
	"vecstudy/internal/server"
	"vecstudy/internal/wire"
)

func main() {
	var (
		dir      = flag.String("d", "", "database directory (empty = in-memory)")
		pageSize = flag.Int("pagesize", 8192, "page size in bytes")
		enWAL    = flag.Bool("wal", false, "enable write-ahead logging (requires -d)")
		listen   = flag.String("listen", "", "serve the database over TCP on this address (e.g. :5462)")
		connect  = flag.String("connect", "", "connect to a vdb server instead of opening a local database")
		ping     = flag.Bool("ping", false, "with -connect: probe the server and exit")
		maxConns = flag.Int("max-conns", 64, "with -listen: concurrently served connections")
		queueLen = flag.Int("queue", 128, "with -listen: admission queue depth beyond -max-conns")
		qTimeout = flag.Duration("query-timeout", 30*time.Second, "with -listen: per-statement timeout")
		route    = flag.Bool("route", false, "with -listen: serve as a cluster router instead of a local database")
		shards   = flag.String("shards", "", "with -route: shard map, ';' between shards, ',' between a shard's replicas")
		partial  = flag.Bool("partial", true, "with -route: answer with DEGRADED partial results when a whole shard is unreachable")
		shardTO  = flag.Duration("shard-deadline", 10*time.Second, "with -route: per-shard subquery deadline")
	)
	flag.Parse()

	if *connect != "" {
		os.Exit(runRemote(*connect, *ping))
	}
	if *ping {
		fmt.Fprintln(os.Stderr, "vdb: -ping requires -connect")
		os.Exit(2)
	}

	if *route {
		if *listen == "" || *shards == "" {
			fmt.Fprintln(os.Stderr, "vdb: -route requires -listen and -shards")
			os.Exit(2)
		}
		m, err := cluster.ParseShardMap(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
			os.Exit(2)
		}
		router := cluster.NewRouter(m, cluster.Config{
			ShardDeadline: *shardTO,
			Partial:       *partial,
		})
		defer router.Close()
		srv := server.NewWithBackend(router, server.Config{
			MaxActive:    *maxConns,
			QueueDepth:   *queueLen,
			QueryTimeout: *qTimeout,
		})
		desc := fmt.Sprintf("routing %d shard(s), %d replica(s)", m.NumShards(), m.NumReplicas())
		os.Exit(serve(srv, *listen, desc))
	}

	d, err := db.Open(db.Config{Dir: *dir, PageSize: *pageSize, EnableWAL: *enWAL})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()

	if *listen != "" {
		code := runServer(d, *listen, server.Config{
			MaxActive:    *maxConns,
			QueueDepth:   *queueLen,
			QueryTimeout: *qTimeout,
		})
		// os.Exit skips the deferred Close, and Close is what flushes
		// dirty pool pages and the catalog — a file-backed server must
		// checkpoint here or a graceful drain still loses committed
		// writes.
		if err := d.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "vdb: close: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	sess := sql.NewSession(d)
	ok := repl(func(text string) (*wire.Result, error) {
		res, err := sess.Execute(text)
		if err != nil {
			return nil, err
		}
		return &wire.Result{Cols: res.Cols, Rows: res.Rows, Msg: res.Msg}, nil
	})
	if !ok {
		d.Close()
		os.Exit(1)
	}
}

// runServer serves a local database until SIGINT/SIGTERM.
func runServer(d *db.DB, addr string, cfg server.Config) int {
	desc := fmt.Sprintf("max-conns=%d queue=%d query-timeout=%v", cfg.MaxActive, cfg.QueueDepth, cfg.QueryTimeout)
	return serve(server.New(d, cfg), addr, desc)
}

// serve runs one serving-layer instance (local database or cluster
// router) until SIGINT/SIGTERM, then drains gracefully.
func serve(srv *server.Server, addr, desc string) int {
	if err := srv.Start(addr); err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		return 1
	}
	fmt.Printf("vdb: serving on %s (%s)\n", srv.Addr(), desc)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("vdb: %v — draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vdb: drain: %v\n", err)
		return 1
	}
	st := srv.Stats()
	fmt.Printf("vdb: drained (served %d queries, %d errors, p50=%v p99=%v)\n",
		st.Queries, st.Errors, st.P50, st.P99)
	return 0
}

// runRemote is the -connect mode: a ping probe or a remote shell.
func runRemote(addr string, pingOnly bool) int {
	c, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		return 1
	}
	defer c.Close()
	if pingOnly {
		if err := c.Ping(); err != nil {
			fmt.Fprintf(os.Stderr, "vdb: ping %s: %v\n", addr, err)
			return 1
		}
		fmt.Printf("vdb: %s is serving\n", addr)
		return 0
	}
	if ok := repl(c.Execute); !ok {
		return 1
	}
	return 0
}

// repl reads statements from stdin (interactive prompt on a TTY) and
// executes them through exec. It reports false if any statement failed
// while non-interactive (piped SQL), after draining the input.
func repl(exec func(string) (*wire.Result, error)) bool {
	interactive := isTerminal()
	if interactive {
		fmt.Println("vdb — generalized vector database shell (\\q to quit)")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<26)
	clean := true
	var stmt strings.Builder
	for {
		if interactive {
			if stmt.Len() == 0 {
				fmt.Print("vdb> ")
			} else {
				fmt.Print("...> ")
			}
		}
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if stmt.Len() == 0 && (trimmed == "" || strings.HasPrefix(trimmed, "--")) {
			continue
		}
		if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
			break
		}
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		if !runStatement(exec, stmt.String()) {
			clean = false
		}
		stmt.Reset()
	}
	if stmt.Len() > 0 {
		if !runStatement(exec, stmt.String()) {
			clean = false
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		return false
	}
	// Interactive users saw each ERROR as it happened; only piped input
	// turns past failures into a non-zero exit.
	return interactive || clean
}

func runStatement(exec func(string) (*wire.Result, error), text string) bool {
	res, err := exec(text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ERROR: %v\n", err)
		return false
	}
	if res.Msg != "" {
		// A result can carry both a message and rows (e.g. the router's
		// DEGRADED tag on a partial answer): print the tag, then the rows.
		fmt.Println(res.Msg)
		if len(res.Cols) == 0 {
			return true
		}
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			switch val := v.(type) {
			case []float32:
				if len(val) > 8 {
					parts[i] = fmt.Sprintf("%v…(%d dims)", val[:8], len(val))
				} else {
					parts[i] = fmt.Sprintf("%v", val)
				}
			default:
				parts[i] = fmt.Sprintf("%v", v)
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return true
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
