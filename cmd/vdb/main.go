// Command vdb is an interactive SQL shell over the generalized vector
// database — the PostgreSQL-style engine with the PASE-style index access
// methods. It speaks the dialect of internal/pg/sql:
//
//	CREATE TABLE t (id int, vec float[]);
//	INSERT INTO t VALUES (1, '{0.1, 0.2, 0.3}');
//	CREATE INDEX idx ON t USING ivfflat (vec) WITH (clusters = 256);
//	SET nprobe = 20;
//	SELECT id, distance FROM t ORDER BY vec <-> '{0.1,0.2,0.3}' LIMIT 10;
//
// With -d the database is file-backed (and persists across runs); without
// it everything lives in memory. Statements may also be piped on stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	_ "vecstudy/internal/pase/all"
	"vecstudy/internal/pg/db"
	"vecstudy/internal/pg/sql"
)

func main() {
	var (
		dir      = flag.String("d", "", "database directory (empty = in-memory)")
		pageSize = flag.Int("pagesize", 8192, "page size in bytes")
		enWAL    = flag.Bool("wal", false, "enable write-ahead logging (requires -d)")
	)
	flag.Parse()

	d, err := db.Open(db.Config{Dir: *dir, PageSize: *pageSize, EnableWAL: *enWAL})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()
	sess := sql.NewSession(d)

	interactive := isTerminal()
	if interactive {
		fmt.Println("vdb — generalized vector database shell (\\q to quit)")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<26)
	var stmt strings.Builder
	for {
		if interactive {
			if stmt.Len() == 0 {
				fmt.Print("vdb> ")
			} else {
				fmt.Print("...> ")
			}
		}
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if stmt.Len() == 0 && (trimmed == "" || strings.HasPrefix(trimmed, "--")) {
			continue
		}
		if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
			break
		}
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		runStatement(sess, stmt.String())
		stmt.Reset()
	}
	if stmt.Len() > 0 {
		runStatement(sess, stmt.String())
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "vdb: %v\n", err)
		os.Exit(1)
	}
}

func runStatement(sess *sql.Session, text string) {
	res, err := sess.Execute(text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ERROR: %v\n", err)
		return
	}
	if res.Msg != "" {
		fmt.Println(res.Msg)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			switch val := v.(type) {
			case []float32:
				if len(val) > 8 {
					parts[i] = fmt.Sprintf("%v…(%d dims)", val[:8], len(val))
				} else {
					parts[i] = fmt.Sprintf("%v", val)
				}
			default:
				parts[i] = fmt.Sprintf("%v", v)
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}
