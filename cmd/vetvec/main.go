// Command vetvec runs this repository's custom static analyzers over Go
// packages and exits non-zero if any diagnostic is reported. It is the
// codebase's analogue of PostgreSQL's CHECK_FOR_LEAKED_BUFFERS and
// LWLock assertions: the invariants the paper reproduction depends on —
// pinned buffers always released (RC#2), pinned-page memory never
// outliving its pin, no blocking calls under a buffer-partition mutex
// (RC#3), SQLSTATEs drawn from declared constants, no fire-and-forget
// goroutines on serving paths — checked mechanically instead of by
// convention.
//
// Before any analyzer runs, an interprocedural summary table is built
// over every loaded package (see internal/analysis/summary.go), so
// pinrelease and pagealias see through helper calls: a helper that
// releases on behalf of its caller, or returns a slice into a pinned
// frame, is known by summary rather than trusted by directive.
//
// Usage:
//
//	go run ./cmd/vetvec ./...
//	go run ./cmd/vetvec -run pinrelease,pagealias ./internal/pg/...
//	go run ./cmd/vetvec -json ./...
//
// Diagnostics print as path:line:col: [analyzer] message, sorted by
// (file, line, col, analyzer); -json emits one JSON object per line in
// the same order. Packages are analyzed in parallel; output order is
// deterministic either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"vecstudy/internal/analysis"
	"vecstudy/internal/analysis/deadvisibility"
	"vecstudy/internal/analysis/gohygiene"
	"vecstudy/internal/analysis/load"
	"vecstudy/internal/analysis/lockscope"
	"vecstudy/internal/analysis/pagealias"
	"vecstudy/internal/analysis/pinrelease"
	"vecstudy/internal/analysis/rawdistance"
	"vecstudy/internal/analysis/sqlstate"
)

var analyzers = []*analysis.Analyzer{
	pinrelease.Analyzer,
	pagealias.Analyzer,
	lockscope.Analyzer,
	sqlstate.Analyzer,
	gohygiene.Analyzer,
	deadvisibility.Analyzer,
	rawdistance.Analyzer,
}

// finding is one diagnostic with its resolved position, the unit of
// both text and JSON output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON objects, one per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vetvec [-run names] [-json] packages...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	selected, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}
	loader, err := load.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Patterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}

	// The summary table spans every loaded package — including ones the
	// analyzers skip — so cross-package helper calls resolve.
	inputs := make([]analysis.SummaryInput, 0, len(pkgs))
	for _, pkg := range pkgs {
		inputs = append(inputs, analysis.SummaryInput{
			Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info, Pkg: pkg.Types,
		})
	}
	summaries := analysis.BuildSummaries(inputs)

	// vetvec does not analyze itself: analyzer sources and fixtures
	// quote the very patterns the checkers flag.
	var targets []*load.Package
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.Path, "vecstudy/internal/analysis") ||
			strings.HasPrefix(pkg.Path, "vecstudy/cmd/vetvec") {
			continue
		}
		targets = append(targets, pkg)
	}

	findings, err := analyze(targets, selected, summaries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonFlag {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "vetvec:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetvec: %d diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}

// analyze runs every selected analyzer over every target package, one
// package per worker; analyzers within a package run serially, so the
// per-package Pass state stays single-threaded.
func analyze(targets []*load.Package, selected []*analysis.Analyzer, summaries *analysis.Summaries) ([]finding, error) {
	perPkg := make([][]finding, len(targets))
	errs := make([]error, len(targets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], errs[i] = analyzePkg(targets[i], selected, summaries)
			}
		}()
	}
	for i := range targets {
		next <- i
	}
	close(next)
	wg.Wait()
	var out []finding
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, perPkg[i]...)
	}
	return out, nil
}

func analyzePkg(pkg *load.Package, selected []*analysis.Analyzer, summaries *analysis.Summaries) ([]finding, error) {
	var out []finding
	for _, a := range selected {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Summaries: summaries,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: name, Message: d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	return out, nil
}

// selectAnalyzers resolves the -run flag to a subset of analyzers.
func selectAnalyzers(runFlag string) ([]*analysis.Analyzer, error) {
	if runFlag == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
