// Command vetvec runs this repository's custom static analyzers over Go
// packages and exits non-zero if any diagnostic is reported. It is the
// codebase's analogue of PostgreSQL's CHECK_FOR_LEAKED_BUFFERS and
// LWLock assertions: the invariants the paper reproduction depends on —
// pinned buffers always released (RC#2), no blocking calls under a
// buffer-partition mutex (RC#3), SQLSTATEs drawn from declared
// constants, no fire-and-forget goroutines on serving paths — checked
// mechanically instead of by convention.
//
// Usage:
//
//	go run ./cmd/vetvec ./...
//	go run ./cmd/vetvec -run pinrelease,lockscope ./internal/pg/...
//
// Diagnostics print as path:line:col: [analyzer] message.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vecstudy/internal/analysis"
	"vecstudy/internal/analysis/deadvisibility"
	"vecstudy/internal/analysis/gohygiene"
	"vecstudy/internal/analysis/load"
	"vecstudy/internal/analysis/lockscope"
	"vecstudy/internal/analysis/pinrelease"
	"vecstudy/internal/analysis/rawdistance"
	"vecstudy/internal/analysis/sqlstate"
)

var analyzers = []*analysis.Analyzer{
	pinrelease.Analyzer,
	lockscope.Analyzer,
	sqlstate.Analyzer,
	gohygiene.Analyzer,
	deadvisibility.Analyzer,
	rawdistance.Analyzer,
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vetvec [-run names] packages...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	selected, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}
	loader, err := load.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Patterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetvec:", err)
		os.Exit(2)
	}

	count := 0
	for _, pkg := range pkgs {
		// vetvec does not analyze itself: analyzer sources and fixtures
		// quote the very patterns the checkers flag.
		if strings.HasPrefix(pkg.Path, "vecstudy/internal/analysis") ||
			strings.HasPrefix(pkg.Path, "vecstudy/cmd/vetvec") {
			continue
		}
		for _, a := range selected {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "vetvec: %s: %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
			sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
			for _, d := range diags {
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				count++
			}
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "vetvec: %d diagnostic(s)\n", count)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run flag to a subset of analyzers.
func selectAnalyzers(runFlag string) ([]*analysis.Analyzer, error) {
	if runFlag == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
