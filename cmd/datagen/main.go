// Command datagen emits the synthetic workload datasets in TEXMEX fvecs
// format (plus brute-force ground truth in ivecs) so they can be consumed
// by external tools or compared against the real SIFT/GIST/Deep files.
//
//	datagen -profile sift1m -scale 0.02 -out ./data
//
// produces data/sift1m_base.fvecs, data/sift1m_query.fvecs, and
// data/sift1m_groundtruth.ivecs.
//
// With -shard i/N the base file holds only the rows shard i owns under
// the cluster layer's modulo placement (row index mod N == i), named
// sift1m_base.shard0of2.fvecs. The N shard files partition the full
// base set: every shard regenerates the identical dataset from the
// same seed and filters its own slice, so the loads are disjoint and
// reproducible without coordination. Queries and ground truth are
// always global (they describe the union) and are emitted unchanged.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vecstudy/internal/dataset"
	"vecstudy/internal/vec"
)

func main() {
	var (
		profile = flag.String("profile", "sift1m", "dataset profile (sift1m, gist1m, deep1m, sift10m, deep10m, turing10m)")
		scale   = flag.Float64("scale", 0.02, "scale factor (1.0 = paper scale)")
		seed    = flag.Int64("seed", 42, "generator seed")
		k       = flag.Int("k", 100, "ground-truth neighbors per query")
		out     = flag.String("out", ".", "output directory")
		shard   = flag.String("shard", "", "emit one shard's base slice, as \"i/N\" (modulo placement: row mod N == i)")
	)
	flag.Parse()

	shardIdx, shardN := -1, 0
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIdx, &shardN); err != nil ||
			shardN < 1 || shardIdx < 0 || shardIdx >= shardN {
			fatal(fmt.Errorf("bad -shard %q, want i/N with 0 <= i < N", *shard))
		}
	}

	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	ds := dataset.Generate(p, dataset.GenOptions{Scale: *scale, Seed: *seed})
	fmt.Printf("generated %s: %d base, %d query, dim %d\n", ds.Name, ds.N(), ds.NQ(), ds.Dim)
	ds.ComputeGroundTruth(*k, 0)

	baseVecs := ds.Base
	baseName := ds.Name + "_base.fvecs"
	if shardN > 0 {
		baseVecs = vec.NewFlat(ds.Dim, (ds.N()+shardN-1)/shardN)
		for i := shardIdx; i < ds.N(); i += shardN {
			baseVecs.Append(ds.Base.Row(i))
		}
		baseName = fmt.Sprintf("%s_base.shard%dof%d.fvecs", ds.Name, shardIdx, shardN)
		// fvecs carries no ids: shard row j here is global row
		// j*shardN + shardIdx, which is what a loader must INSERT as the
		// id for the router's placement (and ground truth) to line up.
		fmt.Printf("shard %d/%d: %d base rows (global ids i with i %% %d == %d)\n",
			shardIdx, shardN, baseVecs.N(), shardN, shardIdx)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	base := filepath.Join(*out, baseName)
	query := filepath.Join(*out, ds.Name+"_query.fvecs")
	gt := filepath.Join(*out, ds.Name+"_groundtruth.ivecs")
	if err := dataset.WriteFvecs(base, baseVecs); err != nil {
		fatal(err)
	}
	if err := dataset.WriteFvecs(query, ds.Queries); err != nil {
		fatal(err)
	}
	if err := dataset.WriteIvecs(gt, ds.GroundTruth); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s, %s, %s\n", base, query, gt)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
