// Command datagen emits the synthetic workload datasets in TEXMEX fvecs
// format (plus brute-force ground truth in ivecs) so they can be consumed
// by external tools or compared against the real SIFT/GIST/Deep files.
//
//	datagen -profile sift1m -scale 0.02 -out ./data
//
// produces data/sift1m_base.fvecs, data/sift1m_query.fvecs, and
// data/sift1m_groundtruth.ivecs.
//
// With -shard i/N the base file holds only the rows shard i owns under
// the cluster layer's modulo placement (row index mod N == i), named
// sift1m_base.shard0of2.fvecs. The N shard files partition the full
// base set: every shard regenerates the identical dataset from the
// same seed and filters its own slice, so the loads are disjoint and
// reproducible without coordination. Queries and ground truth are
// always global (they describe the union) and are emitted unchanged.
//
// With -churn del=0.2,upd=0.1 an additional <name>_churn.sql file is
// written: a self-contained, deterministic SQL stream (CREATE TABLE,
// then interleaved INSERT/DELETE/UPDATE statements) exercising the
// dynamic-data subsystem. Fractions are of the base set; deletes and
// updates target uniformly random still-live rows and are spread evenly
// through the insert stream after a 10% warmup.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"vecstudy/internal/dataset"
	"vecstudy/internal/vec"
)

func main() {
	var (
		profile = flag.String("profile", "sift1m", "dataset profile (sift1m, gist1m, deep1m, sift10m, deep10m, turing10m)")
		scale   = flag.Float64("scale", 0.02, "scale factor (1.0 = paper scale)")
		seed    = flag.Int64("seed", 42, "generator seed")
		k       = flag.Int("k", 100, "ground-truth neighbors per query")
		out     = flag.String("out", ".", "output directory")
		shard   = flag.String("shard", "", "emit one shard's base slice, as \"i/N\" (modulo placement: row mod N == i)")
		churn   = flag.String("churn", "", "also emit an interleaved INSERT/DELETE/UPDATE SQL stream, as \"del=0.2,upd=0.1\"")
		churnTb = flag.String("churn-table", "items", "table name used in the churn SQL stream")
	)
	flag.Parse()

	shardIdx, shardN := -1, 0
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIdx, &shardN); err != nil ||
			shardN < 1 || shardIdx < 0 || shardIdx >= shardN {
			fatal(fmt.Errorf("bad -shard %q, want i/N with 0 <= i < N", *shard))
		}
	}

	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	ds := dataset.Generate(p, dataset.GenOptions{Scale: *scale, Seed: *seed})
	fmt.Printf("generated %s: %d base, %d query, dim %d\n", ds.Name, ds.N(), ds.NQ(), ds.Dim)
	ds.ComputeGroundTruth(*k, 0)

	baseVecs := ds.Base
	baseName := ds.Name + "_base.fvecs"
	if shardN > 0 {
		baseVecs = vec.NewFlat(ds.Dim, (ds.N()+shardN-1)/shardN)
		for i := shardIdx; i < ds.N(); i += shardN {
			baseVecs.Append(ds.Base.Row(i))
		}
		baseName = fmt.Sprintf("%s_base.shard%dof%d.fvecs", ds.Name, shardIdx, shardN)
		// fvecs carries no ids: shard row j here is global row
		// j*shardN + shardIdx, which is what a loader must INSERT as the
		// id for the router's placement (and ground truth) to line up.
		fmt.Printf("shard %d/%d: %d base rows (global ids i with i %% %d == %d)\n",
			shardIdx, shardN, baseVecs.N(), shardN, shardIdx)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	base := filepath.Join(*out, baseName)
	query := filepath.Join(*out, ds.Name+"_query.fvecs")
	gt := filepath.Join(*out, ds.Name+"_groundtruth.ivecs")
	if err := dataset.WriteFvecs(base, baseVecs); err != nil {
		fatal(err)
	}
	if err := dataset.WriteFvecs(query, ds.Queries); err != nil {
		fatal(err)
	}
	if err := dataset.WriteIvecs(gt, ds.GroundTruth); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s, %s, %s\n", base, query, gt)

	if *churn != "" {
		delFrac, updFrac, err := parseChurn(*churn)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, ds.Name+"_churn.sql")
		nStmts, err := writeChurn(path, ds.Base, *churnTb, delFrac, updFrac, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d statements, del=%.2f upd=%.2f)\n", path, nStmts, delFrac, updFrac)
	}
}

// parseChurn parses "del=0.2,upd=0.1" (either key may be omitted).
func parseChurn(s string) (delFrac, updFrac float64, err error) {
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad -churn component %q, want key=fraction", part)
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil || f < 0 || f > 1 {
			return 0, 0, fmt.Errorf("bad -churn fraction %q, want a number in [0,1]", v)
		}
		switch k {
		case "del":
			delFrac = f
		case "upd":
			updFrac = f
		default:
			return 0, 0, fmt.Errorf("unknown -churn key %q, want del or upd", k)
		}
	}
	return delFrac, updFrac, nil
}

// writeChurn emits a deterministic SQL stream: CREATE TABLE, then the
// base rows as INSERTs with DELETE and UPDATE statements interleaved
// evenly after a 10%% warmup. Deletes target uniformly random live rows;
// updates perturb the row's vector in place (small additive noise keeps
// the update in-distribution, so post-churn recall is comparable).
func writeChurn(path string, base *vec.Flat, table string, delFrac, updFrac float64, seed int64) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	n := base.N()
	rng := rand.New(rand.NewSource(seed + 1))

	// Churn schedule: 'd' and 'u' ops shuffled together, dealt out evenly
	// across the post-warmup insert stream.
	ops := make([]byte, 0, int(delFrac*float64(n))+int(updFrac*float64(n)))
	for i := 0; i < int(delFrac*float64(n)); i++ {
		ops = append(ops, 'd')
	}
	for i := 0; i < int(updFrac*float64(n)); i++ {
		ops = append(ops, 'u')
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

	warm := n / 10
	if warm < 1 {
		warm = 1
	}
	live := make([]int, 0, n) // ids inserted and not yet deleted
	stmts := 0
	emit := func(s string) {
		fmt.Fprintf(w, "%s;\n", s)
		stmts++
	}
	emit(fmt.Sprintf("CREATE TABLE %s (id int, v float[])", table))

	opi := 0
	churnOp := func() {
		if len(live) == 0 {
			return
		}
		switch ops[opi] {
		case 'd':
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			emit(fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, id))
		case 'u':
			id := live[rng.Intn(len(live))]
			v := append([]float32(nil), base.Row(id)...)
			for i := range v {
				v[i] += (rng.Float32() - 0.5) * 0.1
			}
			emit(fmt.Sprintf("UPDATE %s SET v = '%s' WHERE id = %d", table, vecLiteral(v), id))
		}
		opi++
	}
	for i := 0; i < n; i++ {
		emit(fmt.Sprintf("INSERT INTO %s VALUES (%d, '%s')", table, i, vecLiteral(base.Row(i))))
		live = append(live, i)
		if i < warm {
			continue
		}
		// Even distribution: by the time insert i lands, a proportional
		// share of the churn schedule has been emitted.
		for opi < len(ops) && opi*(n-warm) < (i-warm+1)*len(ops) {
			churnOp()
		}
	}
	for opi < len(ops) {
		churnOp()
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return stmts, err
	}
	return stmts, f.Close()
}

// vecLiteral renders a vector in the dialect's '{...}' literal form.
func vecLiteral(v []float32) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
	}
	b.WriteByte('}')
	return b.String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
