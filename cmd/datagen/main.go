// Command datagen emits the synthetic workload datasets in TEXMEX fvecs
// format (plus brute-force ground truth in ivecs) so they can be consumed
// by external tools or compared against the real SIFT/GIST/Deep files.
//
//	datagen -profile sift1m -scale 0.02 -out ./data
//
// produces data/sift1m_base.fvecs, data/sift1m_query.fvecs, and
// data/sift1m_groundtruth.ivecs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vecstudy/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "sift1m", "dataset profile (sift1m, gist1m, deep1m, sift10m, deep10m, turing10m)")
		scale   = flag.Float64("scale", 0.02, "scale factor (1.0 = paper scale)")
		seed    = flag.Int64("seed", 42, "generator seed")
		k       = flag.Int("k", 100, "ground-truth neighbors per query")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	ds := dataset.Generate(p, dataset.GenOptions{Scale: *scale, Seed: *seed})
	fmt.Printf("generated %s: %d base, %d query, dim %d\n", ds.Name, ds.N(), ds.NQ(), ds.Dim)
	ds.ComputeGroundTruth(*k, 0)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	base := filepath.Join(*out, ds.Name+"_base.fvecs")
	query := filepath.Join(*out, ds.Name+"_query.fvecs")
	gt := filepath.Join(*out, ds.Name+"_groundtruth.ivecs")
	if err := dataset.WriteFvecs(base, ds.Base); err != nil {
		fatal(err)
	}
	if err := dataset.WriteFvecs(query, ds.Queries); err != nil {
		fatal(err)
	}
	if err := dataset.WriteIvecs(gt, ds.GroundTruth); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s, %s, %s\n", base, query, gt)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
