// Command kernelgate is the CI microbench gate for the distance-kernel
// layer: it re-times the BenchmarkKernel* shapes in-process with
// testing.Benchmark and fails if the default kernel's speedup over the
// ref kernel has regressed against the checked-in baseline.
//
// The baseline stores RATIOS (ref ns/op divided by default ns/op per
// shape), not absolute times: absolute ns/op differ across CI hosts,
// but how much faster the unrolled/avx2 kernel is than the scalar
// reference on the same machine in the same run is stable. A refactor
// that quietly de-vectorizes a loop shows up as a ratio collapse no
// matter which runner picked up the job.
//
// Usage:
//
//	go run ./cmd/kernelgate                # gate against the baseline
//	go run ./cmd/kernelgate -update       # re-measure and rewrite it
//	go run ./cmd/kernelgate -margin 0.4   # loosen the tolerance
//
// The gate passes while measured >= baseline * (1 - margin) for every
// shape. Faster-than-baseline runs pass silently; refresh the baseline
// with -update after intentional kernel work (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"vecstudy/internal/vec"
)

// shape is one gated benchmark: a name (the baseline key) and a closure
// that runs the hot loop for a given kernel.
type shape struct {
	name string
	run  func(k vec.Kernel, b *testing.B)
}

func randVecs(n, d int) []float32 {
	rng := rand.New(rand.NewSource(9))
	out := make([]float32, n*d)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// shapes mirrors internal/vec's BenchmarkKernel* surface: solo and
// batch distance shapes at a cache-resident and a larger dimension,
// the NT centroid-scoring shape, and the SQ8 asymmetric forms — solo,
// page-batch, and the decomposed scan's uint8 dot product.
func shapes() []shape {
	var out []shape
	for _, d := range []int{128, 960} {
		d := d
		out = append(out, shape{
			name: fmt.Sprintf("solo/d=%d", d),
			run: func(k vec.Kernel, b *testing.B) {
				x, y := randVecs(1, d), randVecs(1, d)
				var sink float32
				for i := 0; i < b.N; i++ {
					sink += k.L2Sqr(x, y)
				}
				_ = sink
			},
		})
		out = append(out, shape{
			name: fmt.Sprintf("rows/d=%d", d),
			run: func(k vec.Kernel, b *testing.B) {
				const n = 256
				flat := randVecs(n, d)
				rows := make([][]float32, n)
				for i := range rows {
					rows[i] = flat[i*d : (i+1)*d]
				}
				q := randVecs(1, d)
				dst := make([]float32, n)
				for i := 0; i < b.N; i++ {
					k.L2SqrBatch(q, rows, dst)
				}
			},
		})
	}
	out = append(out, shape{
		name: "nt/m=256,n=8,d=128",
		run: func(k vec.Kernel, b *testing.B) {
			const m, n, d = 256, 8, 128
			a, c := randVecs(m, d), randVecs(n, d)
			dst := make([]float32, m*n)
			for i := 0; i < b.N; i++ {
				k.L2SqrNT(a, m, d, c, n, dst)
			}
		},
	})
	out = append(out, shape{
		name: "sq8/d=128",
		run: func(k vec.Kernel, b *testing.B) {
			const d = 128
			tr := vec.NewSQ8Trainer(d)
			rows := randVecs(64, d)
			for i := 0; i < 64; i++ {
				tr.Observe(rows[i*d : (i+1)*d])
			}
			sq := tr.Finish()
			code := make([]byte, d)
			sq.Encode(rows[:d], code)
			q := randVecs(1, d)
			var sink float32
			for i := 0; i < b.N; i++ {
				sink += k.L2SqrSQ8(q, code, sq)
			}
			_ = sink
		},
	})
	out = append(out, shape{
		name: "sq8batch/d=128",
		run: func(k vec.Kernel, b *testing.B) {
			const d, n = 128, 256
			tr := vec.NewSQ8Trainer(d)
			rows := randVecs(n, d)
			for i := 0; i < n; i++ {
				tr.Observe(rows[i*d : (i+1)*d])
			}
			sq := tr.Finish()
			codes := make([][]byte, n)
			for i := range codes {
				codes[i] = make([]byte, d)
				sq.Encode(rows[i*d:(i+1)*d], codes[i])
			}
			q := randVecs(1, d)
			dst := make([]float32, n)
			for i := 0; i < b.N; i++ {
				k.L2SqrSQ8Batch(q, codes, sq, dst)
			}
		},
	})
	out = append(out, shape{
		name: "dotsq8/d=128",
		run: func(k vec.Kernel, b *testing.B) {
			const d, n = 128, 256
			w := randVecs(1, d)
			codes := make([][]byte, n)
			rng := rand.New(rand.NewSource(11))
			for i := range codes {
				codes[i] = make([]byte, d)
				rng.Read(codes[i])
			}
			dst := make([]float32, n)
			for i := 0; i < b.N; i++ {
				k.DotSQ8Batch(w, codes, dst)
			}
		},
	})
	return out
}

// measure times one shape for one kernel and returns the best ns/op of
// three repetitions — the minimum is the noise-robust estimator for a
// deterministic hot loop (interference only ever slows a rep down).
func measure(s shape, k vec.Kernel) float64 {
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		res := testing.Benchmark(func(b *testing.B) { s.run(k, b) })
		// Fractional ns/op: NsPerOp truncates to integer nanoseconds,
		// which alone is a 8% quantization error on a 12 ns kernel.
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func main() {
	baselinePath := flag.String("baseline", "cmd/kernelgate/baseline.json", "ratio baseline file")
	update := flag.Bool("update", false, "re-measure and rewrite the baseline instead of gating")
	// The margin tolerates shared-runner noise, not regressions: the
	// failure mode this gate exists for — a refactor that quietly
	// de-vectorizes a kernel — collapses a 6x ratio toward 1x, far past
	// any plausible noise band.
	margin := flag.Float64("margin", 0.25, "allowed fractional regression below the baseline ratio")
	flag.Parse()

	ref := vec.Ref()
	fmt.Printf("kernelgate: registered kernels: %v (default %s)\n",
		vec.RegisteredKernelNames(), vec.Default().Name())

	// Every registered accelerated kernel is gated against ref measured
	// in the same run; keys are "<kernel>/<shape>".
	ratios := map[string]float64{}
	for _, s := range shapes() {
		refNs := measure(s, ref)
		for _, name := range vec.RegisteredKernelNames() {
			if name == ref.Name() {
				continue
			}
			k, err := vec.ForName(name)
			if err != nil {
				fatal(err)
			}
			kNs := measure(s, k)
			r := refNs / kNs
			ratios[name+"/"+s.name] = r
			fmt.Printf("  %-28s ref %10.1f ns/op   %-8s %10.1f ns/op   ratio %.2fx\n",
				name+"/"+s.name, refNs, name, kNs, r)
		}
	}

	if *update {
		data, err := json.MarshalIndent(ratios, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("kernelgate: baseline written to %s\n", *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create the baseline)", err))
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(data, &baseline); err != nil {
		fatal(err)
	}

	var names []string
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	registered := map[string]bool{}
	for _, k := range vec.RegisteredKernelNames() {
		registered[k] = true
	}
	failed := 0
	for _, name := range names {
		want := baseline[name] * (1 - *margin)
		got, ok := ratios[name]
		if !ok {
			// A baseline row for a kernel this host cannot register
			// (avx2 on a non-AVX2 runner) is skipped, not failed.
			if i := strings.IndexByte(name, '/'); i > 0 && !registered[name[:i]] {
				fmt.Printf("kernelgate: skip %s: kernel not registered on this host\n", name)
				continue
			}
			fmt.Printf("kernelgate: FAIL %s: shape missing from this build\n", name)
			failed++
			continue
		}
		if got < want {
			fmt.Printf("kernelgate: FAIL %s: ratio %.2fx < %.2fx (baseline %.2fx - %d%% margin)\n",
				name, got, want, baseline[name], int(*margin*100))
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "kernelgate: %d shape(s) regressed\n", failed)
		os.Exit(1)
	}
	fmt.Println("kernelgate: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kernelgate:", err)
	os.Exit(1)
}
