// Command benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig3
//	benchrunner -exp all -scale 0.02 -datasets sift1m,gist1m
//
// Output is plain text: one header block per experiment with the paper's
// reference result, then the measured rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vecstudy/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig2..fig19, tab3..tab5, ablation_*) or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("scale", 0.02, "dataset scale factor (1.0 = paper scale)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
		queries  = flag.Int("queries", 100, "max queries per dataset")
		clients  = flag.String("clients", "", "comma-separated client counts for -exp qps (default 1,2,4,8,16)")
		seed     = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "benchrunner: -exp required (or -list)")
		os.Exit(2)
	}
	cfg := &bench.Config{Scale: *scale, Queries: *queries, Seed: *seed, Out: os.Stdout}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *clients != "" {
		for _, c := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad -clients entry %q\n", c)
				os.Exit(2)
			}
			cfg.Clients = append(cfg.Clients, n)
		}
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		if err := bench.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
	}
}
